#include "cluster/dist_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>

#include "cluster/delta_codec.hpp"

#include "gpusim/device.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "sparse/io_binary.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace tpa::cluster {

const char* worker_status_name(WorkerStatus status) {
  switch (status) {
    case WorkerStatus::kActive:
      return "active";
    case WorkerStatus::kInFlight:
      return "in-flight";
    case WorkerStatus::kBackoff:
      return "backoff";
    case WorkerStatus::kEvicted:
      return "evicted";
  }
  return "?";
}

DistributedSolver::DistributedSolver(const data::Dataset& global,
                                     const DistConfig& config)
    : global_(&global),
      config_(config),
      global_problem_(global, config.lambda),
      injector_(config.faults),
      global_workload_(core::TimingWorkload::for_dataset(
          global, config.formulation)) {
  const auto dim = global_problem_.num_coordinates(config.formulation);
  validate_cluster_config("DistributedSolver", config.num_workers, dim,
                          config.formulation, config.local_epochs_per_round,
                          config.max_restarts);
  if (config.straggler_grace <= 1.0) {
    throw std::invalid_argument(
        "DistributedSolver: straggler_grace must be > 1 (the deadline must "
        "allow at least a full healthy epoch)");
  }
  if (config.delta_threshold < 0.0) {
    throw std::invalid_argument(
        "DistributedSolver: delta_threshold must be >= 0");
  }
  config.network.validate();
  const bool heterogeneous = !config.fleet.empty();
  if (heterogeneous &&
      static_cast<int>(config.fleet.size()) != config.num_workers) {
    throw std::invalid_argument(
        "DistributedSolver: fleet has " +
        std::to_string(config.fleet.size()) + " devices but num_workers is " +
        std::to_string(config.num_workers));
  }
  gpu_local_ = heterogeneous
                   ? placement::fleet_has_gpu(config.fleet)
                   : is_gpu_solver_kind(config.local_solver.kind);

  util::Rng rng(config.seed);
  if (heterogeneous) {
    // Plan the partition sizes against the placement cost model, then deal
    // the same permutation draw the legacy path uses.  With a homogeneous
    // fleet the planned sizes equal the uniform split and random_weighted
    // reproduces Partition::random bit-for-bit.
    placement::CostOptions cost_options;
    cost_options.local_passes = config.local_epochs_per_round;
    cost_options.comm_overlap = config.comm_overlap;
    cost_options.seconds_per_vector_element =
        config.local_solver.cpu_cost.seconds_per_vector_element;
    if (config.compress_deltas) {
      cost_options.delta_wire_bytes = quantized_delta_wire_bytes(
          static_cast<std::size_t>(global_workload_.shared_dim));
    }
    placement::PlacementCostModel cost_model(config.fleet, dim,
                                             global_workload_, config.network,
                                             cost_options);
    placement::AnnealConfig anneal;
    anneal.seed = config.placement_seed;
    placement_result_ =
        placement::plan_placement(cost_model, config.placement, anneal);
    partition_ = Partition::random_weighted(dim, placement_result_->sizes,
                                            rng);
  } else {
    partition_ = Partition::random(dim, config.num_workers, rng);
  }
  shared_.assign(global_problem_.shared_dim(config.formulation), 0.0F);

  workers_.reserve(static_cast<std::size_t>(config.num_workers));
  for (int k = 0; k < config.num_workers; ++k) {
    auto worker = std::make_unique<Worker>();
    const core::SolverConfig local =
        heterogeneous ? config.fleet[static_cast<std::size_t>(k)]
                            .solver_config(config.local_solver)
                      : config.local_solver;
    init_worker_core(worker->core, global, partition_, k, config.formulation,
                     config.lambda, local);
    workers_.push_back(std::move(worker));
  }

  obs::set_track_name(kMasterTrack, "dist/master");
  obs::set_track_name(attribution_track(kMasterTrack),
                      "dist/attribution (sim)");
  for (int k = 0; k < config.num_workers; ++k) {
    obs::set_track_name(worker_track(kMasterTrack, k),
                        "dist/worker " + std::to_string(k));
  }
}

void DistributedSolver::record_event(int worker,
                                     core::ClusterEventKind kind) {
  record_cluster_event(events_, epoch_, worker, kind, kMasterTrack);
}

void DistributedSolver::handle_crash(Worker& worker, int index) {
  // The in-progress epoch (buffered or not) is lost; the worker's committed
  // weights survive because the master re-seeds the replacement shard from
  // its own assembled state on restart (DESIGN.md §8).
  worker.pending.reset();
  ++worker.crash_count;
  record_event(index, core::ClusterEventKind::kCrash);
  if (worker.crash_count > config_.max_restarts) {
    worker.status = WorkerStatus::kEvicted;
    record_event(index, core::ClusterEventKind::kEvict);
  } else {
    worker.status = WorkerStatus::kBackoff;
    worker.backoff_remaining = 1 << (worker.crash_count - 1);
  }
}

core::EpochReport DistributedSolver::run_epoch() {
  const util::WallTimer timer;
  ++epoch_;
  obs::TraceSpan epoch_span("dist/epoch", kMasterTrack, epoch_);
  obs::metrics().counter("cluster.epochs").add();
  const auto f = config_.formulation;
  const auto n = static_cast<double>(global_problem_.num_examples());
  const double lambda = config_.lambda;
  const int local_passes = config_.local_epochs_per_round;
  const auto num_workers = workers_.size();

  enum class Outcome { kIdle, kFresh, kLate };
  std::vector<Outcome> outcome(num_workers, Outcome::kIdle);
  std::vector<double> run_seconds(num_workers, 0.0);
  std::vector<FaultEvent> fault(num_workers);
  std::vector<bool> ran(num_workers, false);
  std::uint64_t updates = 0;

  // ---- Phase 1: advance every worker's state machine; run the active
  // ones.  Every worker consumes exactly `local_passes` permutations per
  // outer epoch — run, buffered, or skipped — so that stream positions stay
  // the pure function of the epoch counter that restore() relies on.
  for (std::size_t k = 0; k < num_workers; ++k) {
    auto& worker = *workers_[k];
    const int index = static_cast<int>(k);

    if (worker.status == WorkerStatus::kEvicted) {
      worker.core.solver->skip_epoch_randomness(local_passes);
      continue;
    }
    if (worker.status == WorkerStatus::kBackoff) {
      worker.core.solver->skip_epoch_randomness(local_passes);
      if (--worker.backoff_remaining <= 0) {
        worker.status = WorkerStatus::kActive;
        record_event(index, core::ClusterEventKind::kRestart);
      }
      continue;
    }

    fault[k] = injector_.query(epoch_, index);

    if (worker.status == WorkerStatus::kInFlight) {
      worker.core.solver->skip_epoch_randomness(local_passes);
      if (fault[k].kind == FaultKind::kCrash) {
        handle_crash(worker, index);
        continue;
      }
      auto& pending = *worker.pending;
      if (++pending.rounds_done >= pending.rounds_needed) {
        outcome[k] = Outcome::kLate;  // incorporated below
      }
      continue;
    }

    // Active worker.  A crash costs the whole local epoch; nothing to run.
    if (fault[k].kind == FaultKind::kCrash) {
      worker.core.solver->skip_epoch_randomness(local_passes);
      handle_crash(worker, index);
      continue;
    }

    // Broadcast: the worker starts its epoch from the master's shared
    // vector (its local copy then diverges as it applies local updates).
    obs::TraceSpan solve_span("dist/local_solve",
                              worker_track(kMasterTrack, index), epoch_);
    if (epoch_ > 1) {
      // Close the arrow from last round's broadcast: this solve consumes the
      // γ-scaled model the master published then.
      obs::trace_flow_end("flow/model",
                          model_flow_id(kMasterTrack, epoch_ - 1, index),
                          worker_track(kMasterTrack, index));
    }
    auto& state = worker.core.solver->mutable_state();
    state.shared.assign(shared_.begin(), shared_.end());
    worker.weights_start = state.weights;
    double local_seconds = 0.0;
    for (int pass = 0; pass < local_passes; ++pass) {
      local_seconds += worker.core.solver->run_epoch().sim_seconds;
    }
    ran[k] = true;
    run_seconds[k] = local_seconds;
    updates += state.weights.size();
    // Open the delta arrow inside the solve span: the push to the master.
    obs::trace_flow_begin("flow/delta",
                          delta_flow_id(kMasterTrack, epoch_, index),
                          worker_track(kMasterTrack, index));
  }

  // Phases 2–4 compute values consumed across phase boundaries, so their
  // spans use explicit begin timestamps instead of nested RAII scopes.
  const bool tracing = obs::trace_enabled();

  // ---- Phase 2: the straggler deadline, from the timing breakdown: the
  // master waits grace x (slowest healthy compute + network round) before
  // aggregating without the laggards.
  const double wait_begin_us = tracing ? obs::trace_now_us() : 0.0;
  const std::size_t shared_bytes =
      static_cast<std::size_t>(global_workload_.shared_dim) * sizeof(float);
  // Reduce-leg payload per delta: the dense-quantized wire size under
  // compression (deterministic — what the placement cost model prices), the
  // legacy dense fp32 image otherwise.  The broadcast leg is always dense.
  const DeltaCodecConfig codec{config_.delta_threshold, 256};
  const std::size_t delta_leg_bytes =
      config_.compress_deltas
          ? quantized_delta_wire_bytes(
                static_cast<std::size_t>(global_workload_.shared_dim))
          : shared_bytes;
  const double net_round =
      config_.network.reduce_seconds(delta_leg_bytes, config_.num_workers) +
      config_.network.broadcast_seconds(shared_bytes, config_.num_workers);
  // Bytes-on-wire accounting for every delta that reaches the master: the
  // encoded image when compression is on, the raw fp64 vector otherwise —
  // with the raw fp64 size always recorded as the baseline the precision
  // ablation's ≥2x reduction gate divides by.
  const auto charge_wire = [&](std::size_t wire) {
    const std::size_t dense = dense_delta_wire_bytes(shared_.size());
    delta_bytes_on_wire_ += wire;
    delta_bytes_dense_ += dense;
    obs::metrics().counter("cluster.delta.wire_bytes").add(wire);
    obs::metrics().counter("cluster.delta.dense_bytes").add(dense);
  };
  double healthy_max = 0.0;
  double runner_max = 0.0;
  for (std::size_t k = 0; k < num_workers; ++k) {
    if (!ran[k]) continue;
    runner_max = std::max(runner_max, run_seconds[k]);
    if (fault[k].kind != FaultKind::kStall) {
      healthy_max = std::max(healthy_max, run_seconds[k]);
    }
  }
  if (healthy_max == 0.0) healthy_max = runner_max;  // every runner stalled
  last_deadline_seconds_ =
      config_.straggler_grace * (healthy_max + net_round);
  if (tracing) {
    obs::trace_complete("dist/straggler_wait", wait_begin_us,
                        obs::trace_now_us() - wait_begin_us, kMasterTrack,
                        epoch_);
  }

  // ---- Phase 3: transit outcomes for this round's runners.
  const double reduce_begin_us = tracing ? obs::trace_now_us() : 0.0;
  double compute_max = 0.0;  // slowest delta that the master waited for
  double crit_compute = 0.0;  // its *nominal* compute (stall inflation is
                              // charged to straggler wait, not compute)
  bool any_deadline_miss = false;
  std::vector<double> fresh_arrivals;  // delta-on-the-wire times (overlap)
  for (std::size_t k = 0; k < num_workers; ++k) {
    if (!ran[k]) continue;
    auto& worker = *workers_[k];
    auto& state = worker.core.solver->mutable_state();
    const int index = static_cast<int>(k);
    const double effective =
        fault[k].kind == FaultKind::kStall
            ? run_seconds[k] * std::max(1.0, fault[k].stall_factor)
            : run_seconds[k];

    if (fault[k].kind == FaultKind::kStall &&
        effective > last_deadline_seconds_) {
      // Missed the deadline: buffer the stale delta and keep computing.
      // Rolling the visible weights back to the epoch start keeps the
      // assembled global state consistent until the delta finally lands.
      PendingDelta pending;
      pending.dshared.resize(shared_.size());
      for (std::size_t i = 0; i < shared_.size(); ++i) {
        pending.dshared[i] =
            static_cast<double>(state.shared[i]) - shared_[i];
      }
      pending.dweights.resize(state.weights.size());
      for (std::size_t j = 0; j < state.weights.size(); ++j) {
        pending.dweights[j] = static_cast<float>(
            static_cast<double>(state.weights[j]) - worker.weights_start[j]);
      }
      pending.rounds_needed = std::max(
          2, static_cast<int>(std::ceil(effective / last_deadline_seconds_)));
      pending.rounds_done = 1;
      pending.epoch_started = epoch_;
      if (config_.compress_deltas) {
        // The master will eventually receive the dequantized image; buffer
        // exactly that so the late landing matches what the wire carries.
        const CompressedDelta encoded = encode_delta(pending.dshared, codec);
        pending.wire_bytes = encoded.wire_bytes();
        decode_delta(encoded, pending.dshared);
      } else {
        pending.wire_bytes = dense_delta_wire_bytes(shared_.size());
      }
      state.weights = worker.weights_start;
      worker.pending = std::move(pending);
      worker.status = WorkerStatus::kInFlight;
      any_deadline_miss = true;
      record_event(index, core::ClusterEventKind::kDeadlineMiss);
      continue;
    }

    if (fault[k].kind == FaultKind::kDropDelta) {
      state.weights = worker.weights_start;
      record_event(index, core::ClusterEventKind::kDeltaDropped);
      continue;
    }

    if (fault[k].kind == FaultKind::kCorruptDelta) {
      // The worker checksums its delta before the reduce; the master
      // recomputes on receipt.  Corruption in transit fails the check and
      // the delta is discarded — never silently aggregated.  Under
      // compression the flip lands in the quantized payload and the FNV
      // stream over the encoded image must still catch it.
      std::vector<double> received(shared_.size());
      for (std::size_t i = 0; i < shared_.size(); ++i) {
        received[i] = static_cast<double>(state.shared[i]) - shared_[i];
      }
      bool verified = false;
      if (config_.compress_deltas) {
        CompressedDelta encoded = encode_delta(received, codec);
        charge_wire(encoded.wire_bytes());
        const std::uint64_t sent = encoded.checksum;
        corrupt_compressed_in_transit(encoded);
        verified = compressed_delta_checksum(encoded) == sent;
      } else {
        charge_wire(dense_delta_wire_bytes(received.size()));
        const std::uint64_t sent = delta_checksum(received);
        corrupt_in_transit(received);
        verified = delta_checksum(received) == sent;
      }
      if (!verified) {
        state.weights = worker.weights_start;
        record_event(index, core::ClusterEventKind::kDeltaCorrupted);
        continue;
      }
      // Unreachable (a bit flip always changes the FNV stream), but if the
      // check ever passed the delta is byte-identical and safe to use.
    }

    outcome[k] = Outcome::kFresh;
    if (effective > compute_max) {
      compute_max = effective;
      crit_compute = run_seconds[k];
    }
    fresh_arrivals.push_back(effective);
  }

  // ---- Phase 4: Reduce the surviving deltas on the master.
  std::vector<double> dshared(shared_.size(), 0.0);
  PrimalGammaTerms pterms;
  DualGammaTerms dterms;
  int contributors = 0;
  for (std::size_t k = 0; k < num_workers; ++k) {
    if (outcome[k] == Outcome::kIdle) continue;
    auto& worker = *workers_[k];
    const auto& state = worker.core.solver->state();
    const auto labels = worker.core.shard.labels();
    ++contributors;
    // Close this delta's arrow inside the master's reduce span.  A late
    // delta closes the arrow opened the round it was computed.
    obs::trace_flow_end(
        "flow/delta",
        delta_flow_id(kMasterTrack,
                      outcome[k] == Outcome::kFresh
                          ? epoch_
                          : worker.pending->epoch_started,
                      static_cast<int>(k)),
        kMasterTrack);
    if (outcome[k] == Outcome::kFresh) {
      if (config_.compress_deltas) {
        // Δw^(t,k) travels quantized: the master accumulates the decoded
        // image, so the shared == A·weights invariant holds up to the fp16
        // quantization error of the delta (DESIGN.md §16) — the exchange of
        // the scalar γ terms below stays exact.
        std::vector<double> received(shared_.size());
        for (std::size_t i = 0; i < shared_.size(); ++i) {
          received[i] = static_cast<double>(state.shared[i]) - shared_[i];
        }
        const CompressedDelta encoded = encode_delta(received, codec);
        charge_wire(encoded.wire_bytes());
        decode_delta(encoded, received);
        for (std::size_t i = 0; i < shared_.size(); ++i) {
          dshared[i] += received[i];
        }
      } else {
        // Δw^(t,k), summed straight into the master's accumulator (Reduce).
        charge_wire(dense_delta_wire_bytes(shared_.size()));
        for (std::size_t i = 0; i < shared_.size(); ++i) {
          dshared[i] += static_cast<double>(state.shared[i]) - shared_[i];
        }
      }
      // Local scalar terms for adaptive aggregation (Algorithm 4):
      // computable on each worker because coordinate ownership is disjoint.
      accumulate_gamma_terms(f, labels, worker.weights_start, state.weights,
                             pterms, dterms);
    } else {
      // A straggler's stale delta, finally off the wire.  The invariant is
      // linear in the delta, so incorporating it late is exact; only the
      // descent quality pays for the staleness (PASSCoDe).
      const auto& pending = *worker.pending;
      charge_wire(pending.wire_bytes);
      for (std::size_t i = 0; i < shared_.size(); ++i) {
        dshared[i] += pending.dshared[i];
      }
      for (std::size_t j = 0; j < pending.dweights.size(); ++j) {
        const double start = state.weights[j];  // rolled back at buffering
        const double delta = pending.dweights[j];
        if (f == core::Formulation::kPrimal) {
          pterms.beta_dot_dbeta += start * delta;
          pterms.dbeta_sq += delta * delta;
        } else {
          dterms.dalpha_dot_y += delta * labels[j];
          dterms.dalpha_dot_alpha += start * delta;
          dterms.dalpha_sq += delta * delta;
        }
      }
    }
  }
  last_contributors_ = contributors;
  if (tracing) {
    obs::trace_complete("dist/reduce", reduce_begin_us,
                        obs::trace_now_us() - reduce_begin_us, kMasterTrack,
                        contributors);
  }

  // ---- Master-side terms and the aggregation parameter, rescaled to the
  // workers that actually delivered (degraded-mode aggregation).
  const double fallback_gamma =
      contributors > 0 ? 1.0 / contributors : 0.0;
  if (contributors == 0) {
    last_gamma_ = 0.0;  // nothing landed; the model is untouched this round
  } else if (config_.aggregation == AggregationMode::kAveraging) {
    last_gamma_ = fallback_gamma;
  } else if (config_.aggregation == AggregationMode::kFixed) {
    last_gamma_ = config_.fixed_gamma;
  } else {
    double shared_sq = 0.0;
    double dshared_sq = 0.0;
    double shared_dot_dshared = 0.0;
    for (std::size_t i = 0; i < shared_.size(); ++i) {
      shared_sq += static_cast<double>(shared_[i]) * shared_[i];
      dshared_sq += dshared[i] * dshared[i];
      shared_dot_dshared += static_cast<double>(shared_[i]) * dshared[i];
    }
    // Once the model has converged to 32-bit precision the epoch's update
    // direction is rounding noise and the exact line search is
    // ill-conditioned; fall back to averaging there (it no longer matters).
    const bool direction_is_noise =
        dshared_sq <= 1e-10 * std::max(1.0, shared_sq);
    if (direction_is_noise) {
      last_gamma_ = fallback_gamma;
    } else if (f == core::Formulation::kPrimal) {
      const auto labels = global_->labels();
      pterms.dw_sq = dshared_sq;
      for (std::size_t i = 0; i < shared_.size(); ++i) {
        pterms.y_minus_w_dot_dw +=
            (static_cast<double>(labels[i]) - shared_[i]) * dshared[i];
      }
      last_gamma_ =
          optimal_gamma_primal(pterms, n, lambda, fallback_gamma);
    } else {
      dterms.dwbar_sq = dshared_sq;
      dterms.wbar_dot_dwbar = shared_dot_dshared;
      last_gamma_ = optimal_gamma_dual(dterms, n, lambda, fallback_gamma);
    }
  }

  // ---- Apply the scaled update on the master and rescale the contributing
  // workers' weight updates by the same γ so shared == A·weights stays
  // exact.  Excluded workers were rolled back to their epoch start, so they
  // contribute (exactly) nothing to either side.  This is the broadcast leg:
  // the γ-scaled model every worker starts from next round.
  const double bcast_begin_us = tracing ? obs::trace_now_us() : 0.0;
  if (contributors > 0) {
    for (std::size_t i = 0; i < shared_.size(); ++i) {
      shared_[i] =
          static_cast<float>(shared_[i] + last_gamma_ * dshared[i]);
    }
    for (std::size_t k = 0; k < num_workers; ++k) {
      if (outcome[k] == Outcome::kIdle) continue;
      auto& worker = *workers_[k];
      auto& state = worker.core.solver->mutable_state();
      if (outcome[k] == Outcome::kFresh) {
        for (std::size_t j = 0; j < state.weights.size(); ++j) {
          const double start = worker.weights_start[j];
          const double delta =
              static_cast<double>(state.weights[j]) - start;
          state.weights[j] = static_cast<float>(start + last_gamma_ * delta);
        }
      } else {
        const auto& pending = *worker.pending;
        for (std::size_t j = 0; j < state.weights.size(); ++j) {
          state.weights[j] = static_cast<float>(
              state.weights[j] + last_gamma_ * pending.dweights[j]);
        }
        worker.pending.reset();
        worker.status = WorkerStatus::kActive;
        record_event(static_cast<int>(k),
                     core::ClusterEventKind::kLateDelta);
      }
    }
  }

  if (tracing) {
    // Open one model arrow per live worker inside the broadcast span; each
    // closes at the start of that worker's next solve.
    for (std::size_t k = 0; k < num_workers; ++k) {
      if (workers_[k]->status == WorkerStatus::kEvicted) continue;
      obs::trace_flow_begin(
          "flow/model",
          model_flow_id(kMasterTrack, epoch_, static_cast<int>(k)),
          kMasterTrack);
    }
    obs::trace_complete("dist/broadcast", bcast_begin_us,
                        obs::trace_now_us() - bcast_begin_us, kMasterTrack,
                        epoch_);
  }

  // ---- Simulated time accounting (paper-scale dimensions). ----
  const auto shared_elems = static_cast<double>(global_workload_.shared_dim);
  // Host passes scale with the largest local weight vector.  Without a
  // fleet the partition is the equal split and the legacy mean keeps the
  // pre-placement numbers bit-identical; with one, the placement may be
  // non-uniform, so charge the slowest (largest) worker's paper-scale
  // coordinate count.
  double host_coords = static_cast<double>(global_workload_.num_coordinates) /
                       config_.num_workers;
  if (!config_.fleet.empty()) {
    std::size_t max_owned = 0;
    for (const auto& owned : partition_.owned) {
      max_owned = std::max(max_owned, owned.size());
    }
    const auto dim =
        global_problem_.num_coordinates(config_.formulation);
    host_coords = static_cast<double>(global_workload_.num_coordinates) *
                  static_cast<double>(max_owned) / static_cast<double>(dim);
  }

  EpochBreakdown breakdown;
  // The master waits for the slowest delta it aggregated — or, when a
  // straggler blew the deadline, for the full grace window before giving
  // up on it.
  breakdown.compute_solver =
      any_deadline_miss
          ? std::max(compute_max, config_.straggler_grace * healthy_max)
          : compute_max;
  // Host arithmetic: forming Δw and applying γΔw (2 passes over the shared
  // vector on each host, in parallel across workers => counted once), plus
  // forming / rescaling the local weight deltas (3 passes over the local
  // coordinates).
  breakdown.compute_host =
      config_.local_solver.cpu_cost.seconds_per_vector_element *
      (3.0 * shared_elems + 3.0 * host_coords);
  if (gpu_local_) {
    // Shared vector off the device after the local epoch and the new one
    // back on, through pinned buffers (Section V.A).
    gpusim::PcieLink pcie;
    breakdown.pcie = pcie.transfer_seconds(shared_bytes, /*pinned=*/true) +
                     pcie.transfer_seconds(shared_bytes, /*pinned=*/true);
  }
  if (config_.comm_overlap && fresh_arrivals.size() > 1) {
    // Comm/compute overlap: the master ingests each delta as it lands, so
    // only the reduce time still exposed past the compute wait is charged
    // — by construction never more than the tree reduce, and exactly the
    // quantity the placement cost model prices.
    const double reduce_done = placement::overlapped_reduce_seconds(
        fresh_arrivals, delta_leg_bytes, config_.network);
    const double exposed =
        std::max(0.0, reduce_done - breakdown.compute_solver);
    breakdown.network =
        exposed +
        config_.network.broadcast_seconds(shared_bytes, config_.num_workers);
  } else {
    breakdown.network = net_round;
  }
  if (config_.aggregation == AggregationMode::kAdaptive) {
    // A few scalars ride along with the reduce/broadcast: one extra
    // latency-bound message each way.
    breakdown.network += config_.network.reduce_seconds(
                             4 * sizeof(double), config_.num_workers) +
                         config_.network.broadcast_seconds(
                             sizeof(double), config_.num_workers);
  }
  last_breakdown_ = breakdown;

  // ---- Round attribution (DESIGN.md §15).  compute_solver decomposes into
  // the critical worker's nominal compute plus everything the master spent
  // waiting past it (stall inflation and the grace window on a deadline
  // miss) — so the components sum to breakdown.total() exactly.
  obs::RoundAttribution attr;
  attr.compute_seconds = crit_compute;
  attr.host_seconds = breakdown.compute_host;
  attr.pcie_seconds = breakdown.pcie;
  attr.network_seconds = breakdown.network;
  attr.straggler_wait_seconds = breakdown.compute_solver - crit_compute;
  last_attr_ = attr;
  attr_totals_ += attr;
  ++attr_rounds_;
  obs::record_round_attribution(attr, attr_totals_, breakdown.total(),
                                attr_clock_seconds_, epoch_,
                                attribution_track(kMasterTrack));
  attr_clock_seconds_ += breakdown.total();

  core::EpochReport report;
  report.coordinate_updates = updates;
  report.sim_seconds = breakdown.total();
  report.wall_seconds = timer.seconds();
  return report;
}

double DistributedSolver::duality_gap(util::ThreadPool* pool) const {
  const auto weights = global_weights();
  return global_problem_.duality_gap(config_.formulation, weights, shared_,
                                     pool);
}

void DistributedSolver::set_merge_every(int merge_every) {
  for (auto& worker : workers_) {
    worker->core.solver->set_merge_every(merge_every);
  }
}

double DistributedSolver::setup_sim_seconds() const {
  double slowest = 0.0;
  for (const auto& worker : workers_) {
    slowest = std::max(slowest, worker->core.solver->setup_sim_seconds());
  }
  return slowest;
}

std::vector<float> DistributedSolver::global_weights() const {
  std::vector<float> weights(
      global_problem_.num_coordinates(config_.formulation), 0.0F);
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    const auto& local = workers_[k]->core.solver->state().weights;
    const auto& owned = partition_.owned[k];
    for (std::size_t j = 0; j < owned.size(); ++j) {
      weights[owned[j]] = local[j];
    }
  }
  return weights;
}

WorkerStatus DistributedSolver::worker_status(int worker) const {
  return workers_.at(static_cast<std::size_t>(worker))->status;
}

core::SavedModel DistributedSolver::checkpoint() const {
  core::SavedModel saved;
  saved.formulation = config_.formulation;
  saved.lambda = config_.lambda;
  saved.epoch = static_cast<std::uint32_t>(epoch_);
  saved.weights = global_weights();
  saved.shared = shared_;
  return saved;
}

void DistributedSolver::restore(const core::SavedModel& saved) {
  if (epoch_ != 0) {
    throw std::logic_error(
        "DistributedSolver::restore: must be called on a fresh solver "
        "(epochs have already run)");
  }
  if (saved.formulation != config_.formulation) {
    throw std::invalid_argument(
        "DistributedSolver::restore: checkpoint formulation mismatch");
  }
  if (saved.weights.size() !=
          static_cast<std::size_t>(
              global_problem_.num_coordinates(config_.formulation)) ||
      saved.shared.size() != shared_.size()) {
    throw std::invalid_argument(
        "DistributedSolver::restore: checkpoint dimensions do not match "
        "the dataset/partition");
  }
  if (saved.lambda != config_.lambda) {
    throw std::invalid_argument(
        "DistributedSolver::restore: checkpoint lambda " +
        std::to_string(saved.lambda) + " != configured " +
        std::to_string(config_.lambda));
  }

  shared_.assign(saved.shared.begin(), saved.shared.end());
  const int skip =
      static_cast<int>(saved.epoch) * config_.local_epochs_per_round;
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    auto& worker = *workers_[k];
    auto& state = worker.core.solver->mutable_state();
    const auto& owned = partition_.owned[k];
    for (std::size_t j = 0; j < owned.size(); ++j) {
      state.weights[j] = saved.weights[owned[j]];
    }
    state.shared.assign(shared_.begin(), shared_.end());
    worker.weights_start = state.weights;
    // Realign the permutation stream: every worker consumes exactly
    // local_epochs_per_round shuffles per outer epoch no matter what
    // happened to it, so position == epoch is an invariant and a resumed
    // fault-free run replays the original bit-for-bit.
    worker.core.solver->skip_epoch_randomness(skip);
    // A resume is a cluster-wide cold restart: everyone comes back.
    worker.status = WorkerStatus::kActive;
    worker.crash_count = 0;
    worker.backoff_remaining = 0;
    worker.pending.reset();
  }
  epoch_ = static_cast<int>(saved.epoch);
}

void DistributedSolver::write_checkpoint_file(const std::string& path) const {
  core::write_model_file(path, checkpoint());
}

core::ConvergenceTrace run_distributed(DistributedSolver& solver,
                                       const core::RunOptions& options,
                                       const CheckpointConfig& ckpt) {
  return run_cluster_loop(solver, options, ckpt, kMasterTrack);
}

}  // namespace tpa::cluster
