#include "cluster/dist_solver.hpp"

#include <algorithm>
#include <stdexcept>

#include "gpusim/device.hpp"
#include "util/timer.hpp"

namespace tpa::cluster {
namespace {

bool is_gpu_kind(core::SolverKind kind) {
  return kind == core::SolverKind::kTpaM4000 ||
         kind == core::SolverKind::kTpaTitanX;
}

}  // namespace

DistributedSolver::DistributedSolver(const data::Dataset& global,
                                     const DistConfig& config)
    : global_(&global),
      config_(config),
      global_problem_(global, config.lambda),
      global_workload_(core::TimingWorkload::for_dataset(
          global, config.formulation)) {
  if (config.num_workers <= 0) {
    throw std::invalid_argument(
        "DistributedSolver: num_workers must be positive");
  }
  gpu_local_ = is_gpu_kind(config.local_solver.kind);

  util::Rng rng(config.seed);
  partition_ = Partition::random(
      global_problem_.num_coordinates(config.formulation),
      config.num_workers, rng);
  shared_.assign(global_problem_.shared_dim(config.formulation), 0.0F);

  workers_.reserve(static_cast<std::size_t>(config.num_workers));
  for (int k = 0; k < config.num_workers; ++k) {
    auto worker = std::make_unique<Worker>();
    worker->shard =
        make_shard(global, config.formulation, partition_.owned[k]);
    // The shard problem carries the *global* example count so the λN terms
    // of the local update rule match the global objective (Section IV.A).
    worker->problem = std::make_unique<core::RidgeProblem>(
        worker->shard, config.lambda, global.num_examples());
    core::SolverConfig local = config.local_solver;
    local.formulation = config.formulation;
    local.seed = config.local_solver.seed + static_cast<std::uint64_t>(k);
    worker->solver = core::make_solver(*worker->problem, local);
    workers_.push_back(std::move(worker));
  }
}

core::EpochReport DistributedSolver::run_epoch() {
  const util::WallTimer timer;
  const auto f = config_.formulation;
  const auto n = static_cast<double>(global_problem_.num_examples());
  const double lambda = config_.lambda;
  const double fallback_gamma = 1.0 / config_.num_workers;

  // Aggregated shared-vector delta, accumulated in double on the "master".
  std::vector<double> dshared(shared_.size(), 0.0);
  PrimalGammaTerms pterms;
  DualGammaTerms dterms;
  double slowest_solver = 0.0;

  const int local_passes = std::max(1, config_.local_epochs_per_round);
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    auto& worker = *workers_[k];
    auto& state = worker.solver->mutable_state();
    // Broadcast: the worker starts its epoch from the master's shared
    // vector (its local copy then diverges as it applies local updates).
    state.shared.assign(shared_.begin(), shared_.end());
    worker.weights_start = state.weights;

    double local_seconds = 0.0;
    for (int pass = 0; pass < local_passes; ++pass) {
      local_seconds += worker.solver->run_epoch().sim_seconds;
    }
    slowest_solver = std::max(slowest_solver, local_seconds);

    // Δw^(t,k), summed straight into the master's accumulator (Reduce).
    for (std::size_t i = 0; i < shared_.size(); ++i) {
      dshared[i] += static_cast<double>(state.shared[i]) - shared_[i];
    }
    // Local scalar terms for adaptive aggregation (Algorithm 4): computable
    // on each worker because coordinate ownership is disjoint.
    const auto labels = worker.shard.labels();
    for (std::size_t j = 0; j < state.weights.size(); ++j) {
      const double start = worker.weights_start[j];
      const double delta = static_cast<double>(state.weights[j]) - start;
      if (f == core::Formulation::kPrimal) {
        pterms.beta_dot_dbeta += start * delta;
        pterms.dbeta_sq += delta * delta;
      } else {
        dterms.dalpha_dot_y += delta * labels[j];
        dterms.dalpha_dot_alpha += start * delta;
        dterms.dalpha_sq += delta * delta;
      }
    }
  }

  // Master-side terms and the aggregation parameter.
  if (config_.aggregation == AggregationMode::kAveraging) {
    last_gamma_ = fallback_gamma;
  } else if (config_.aggregation == AggregationMode::kFixed) {
    last_gamma_ = config_.fixed_gamma;
  } else {
    double shared_sq = 0.0;
    double dshared_sq = 0.0;
    double shared_dot_dshared = 0.0;
    for (std::size_t i = 0; i < shared_.size(); ++i) {
      shared_sq += static_cast<double>(shared_[i]) * shared_[i];
      dshared_sq += dshared[i] * dshared[i];
      shared_dot_dshared += static_cast<double>(shared_[i]) * dshared[i];
    }
    // Once the model has converged to 32-bit precision the epoch's update
    // direction is rounding noise and the exact line search is
    // ill-conditioned; fall back to averaging there (it no longer matters).
    const bool direction_is_noise =
        dshared_sq <= 1e-10 * std::max(1.0, shared_sq);
    if (direction_is_noise) {
      last_gamma_ = fallback_gamma;
    } else if (f == core::Formulation::kPrimal) {
      const auto labels = global_->labels();
      pterms.dw_sq = dshared_sq;
      for (std::size_t i = 0; i < shared_.size(); ++i) {
        pterms.y_minus_w_dot_dw +=
            (static_cast<double>(labels[i]) - shared_[i]) * dshared[i];
      }
      last_gamma_ =
          optimal_gamma_primal(pterms, n, lambda, fallback_gamma);
    } else {
      dterms.dwbar_sq = dshared_sq;
      dterms.wbar_dot_dwbar = shared_dot_dshared;
      last_gamma_ = optimal_gamma_dual(dterms, n, lambda, fallback_gamma);
    }
  }

  // Apply the scaled update on the master and rescale the workers' weight
  // updates by the same γ so that shared == A·weights stays exact.
  for (std::size_t i = 0; i < shared_.size(); ++i) {
    shared_[i] =
        static_cast<float>(shared_[i] + last_gamma_ * dshared[i]);
  }
  std::uint64_t updates = 0;
  for (auto& worker_ptr : workers_) {
    auto& worker = *worker_ptr;
    auto& state = worker.solver->mutable_state();
    for (std::size_t j = 0; j < state.weights.size(); ++j) {
      const double start = worker.weights_start[j];
      const double delta = static_cast<double>(state.weights[j]) - start;
      state.weights[j] = static_cast<float>(start + last_gamma_ * delta);
    }
    updates += state.weights.size();
  }

  // ---- Simulated time accounting (paper-scale dimensions). ----
  const auto shared_elems = static_cast<double>(global_workload_.shared_dim);
  const auto coords_per_worker =
      static_cast<double>(global_workload_.num_coordinates) /
      config_.num_workers;
  const std::size_t shared_bytes =
      static_cast<std::size_t>(global_workload_.shared_dim) * sizeof(float);

  EpochBreakdown breakdown;
  breakdown.compute_solver = slowest_solver;
  // Host arithmetic: forming Δw and applying γΔw (2 passes over the shared
  // vector on each host, in parallel across workers => counted once), plus
  // forming / rescaling the local weight deltas (3 passes over the local
  // coordinates).
  breakdown.compute_host =
      config_.local_solver.cpu_cost.seconds_per_vector_element *
      (3.0 * shared_elems + 3.0 * coords_per_worker);
  if (gpu_local_) {
    // Shared vector off the device after the local epoch and the new one
    // back on, through pinned buffers (Section V.A).
    gpusim::PcieLink pcie;
    breakdown.pcie = pcie.transfer_seconds(shared_bytes, /*pinned=*/true) +
                     pcie.transfer_seconds(shared_bytes, /*pinned=*/true);
  }
  breakdown.network =
      config_.network.reduce_seconds(shared_bytes, config_.num_workers) +
      config_.network.broadcast_seconds(shared_bytes, config_.num_workers);
  if (config_.aggregation == AggregationMode::kAdaptive) {
    // A few scalars ride along with the reduce/broadcast: one extra
    // latency-bound message each way.
    breakdown.network += config_.network.reduce_seconds(
                             4 * sizeof(double), config_.num_workers) +
                         config_.network.broadcast_seconds(
                             sizeof(double), config_.num_workers);
  }
  last_breakdown_ = breakdown;

  core::EpochReport report;
  report.coordinate_updates = updates;
  report.sim_seconds = breakdown.total();
  report.wall_seconds = timer.seconds();
  return report;
}

double DistributedSolver::duality_gap() const {
  const auto weights = global_weights();
  return global_problem_.duality_gap(config_.formulation, weights, shared_);
}

double DistributedSolver::setup_sim_seconds() const {
  double slowest = 0.0;
  for (const auto& worker : workers_) {
    slowest = std::max(slowest, worker->solver->setup_sim_seconds());
  }
  return slowest;
}

std::vector<float> DistributedSolver::global_weights() const {
  std::vector<float> weights(
      global_problem_.num_coordinates(config_.formulation), 0.0F);
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    const auto& local = workers_[k]->solver->state().weights;
    const auto& owned = partition_.owned[k];
    for (std::size_t j = 0; j < owned.size(); ++j) {
      weights[owned[j]] = local[j];
    }
  }
  return weights;
}

core::ConvergenceTrace run_distributed(DistributedSolver& solver,
                                       const core::RunOptions& options) {
  core::ConvergenceTrace trace;
  double sim_total =
      options.include_setup_time ? solver.setup_sim_seconds() : 0.0;
  double wall_total = 0.0;
  for (int epoch = 1; epoch <= options.max_epochs; ++epoch) {
    const auto report = solver.run_epoch();
    sim_total += report.sim_seconds;
    wall_total += report.wall_seconds;
    if (epoch % options.record_interval == 0 ||
        epoch == options.max_epochs) {
      core::TracePoint point;
      point.epoch = epoch;
      point.gap = solver.duality_gap();
      point.sim_seconds = sim_total;
      point.wall_seconds = wall_total;
      point.gamma = solver.last_gamma();
      trace.add(point);
      if (options.target_gap > 0.0 && point.gap <= options.target_gap) break;
    }
  }
  return trace;
}

}  // namespace tpa::cluster
