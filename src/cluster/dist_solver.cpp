#include "cluster/dist_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>

#include "gpusim/device.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "sparse/io_binary.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace tpa::cluster {
namespace {

// Virtual trace tracks: the simulation runs on one OS thread, but the
// exported timeline should still read as a cluster — one track for the
// master's reduce/broadcast phases and one per simulated worker.
constexpr std::int32_t kMasterTrack = 1000;

constexpr std::int32_t worker_track(int worker) {
  return worker < 0 ? kMasterTrack : kMasterTrack + 1 + worker;
}

bool is_gpu_kind(core::SolverKind kind) {
  return kind == core::SolverKind::kTpaM4000 ||
         kind == core::SolverKind::kTpaTitanX;
}

/// Simulated transit corruption: flip one mantissa bit of the first entry.
/// Any single-bit change defeats FNV-1a, which is the point — the master
/// must notice without trusting the payload.
void corrupt_in_transit(std::vector<double>& delta) {
  if (delta.empty()) return;
  std::uint64_t bits = 0;
  std::memcpy(&bits, delta.data(), sizeof(bits));
  bits ^= 0x1ULL;
  std::memcpy(delta.data(), &bits, sizeof(bits));
}

std::uint64_t delta_checksum(const std::vector<double>& delta) {
  return sparse::fnv1a(delta.data(), delta.size() * sizeof(double));
}

}  // namespace

const char* worker_status_name(WorkerStatus status) {
  switch (status) {
    case WorkerStatus::kActive:
      return "active";
    case WorkerStatus::kInFlight:
      return "in-flight";
    case WorkerStatus::kBackoff:
      return "backoff";
    case WorkerStatus::kEvicted:
      return "evicted";
  }
  return "?";
}

DistributedSolver::DistributedSolver(const data::Dataset& global,
                                     const DistConfig& config)
    : global_(&global),
      config_(config),
      global_problem_(global, config.lambda),
      injector_(config.faults),
      global_workload_(core::TimingWorkload::for_dataset(
          global, config.formulation)) {
  if (config.num_workers <= 0) {
    throw std::invalid_argument(
        "DistributedSolver: num_workers must be positive, got " +
        std::to_string(config.num_workers));
  }
  const auto dim = global_problem_.num_coordinates(config.formulation);
  if (static_cast<data::Index>(config.num_workers) > dim) {
    throw std::invalid_argument(
        "DistributedSolver: num_workers (" +
        std::to_string(config.num_workers) +
        ") exceeds the partitionable dimension (" + std::to_string(dim) +
        " " +
        (config.formulation == core::Formulation::kPrimal ? "features"
                                                          : "examples") +
        " for the " + std::string(formulation_name(config.formulation)) +
        " form); some workers would own no coordinates");
  }
  if (config.local_epochs_per_round <= 0) {
    throw std::invalid_argument(
        "DistributedSolver: local_epochs_per_round must be >= 1, got " +
        std::to_string(config.local_epochs_per_round));
  }
  if (config.straggler_grace <= 1.0) {
    throw std::invalid_argument(
        "DistributedSolver: straggler_grace must be > 1 (the deadline must "
        "allow at least a full healthy epoch)");
  }
  if (config.max_restarts < 0) {
    throw std::invalid_argument(
        "DistributedSolver: max_restarts must be non-negative");
  }
  gpu_local_ = is_gpu_kind(config.local_solver.kind);

  util::Rng rng(config.seed);
  partition_ = Partition::random(dim, config.num_workers, rng);
  shared_.assign(global_problem_.shared_dim(config.formulation), 0.0F);

  workers_.reserve(static_cast<std::size_t>(config.num_workers));
  for (int k = 0; k < config.num_workers; ++k) {
    auto worker = std::make_unique<Worker>();
    worker->shard =
        make_shard(global, config.formulation, partition_.owned[k]);
    // The shard problem carries the *global* example count so the λN terms
    // of the local update rule match the global objective (Section IV.A).
    worker->problem = std::make_unique<core::RidgeProblem>(
        worker->shard, config.lambda, global.num_examples());
    core::SolverConfig local = config.local_solver;
    local.formulation = config.formulation;
    local.seed = config.local_solver.seed + static_cast<std::uint64_t>(k);
    worker->solver = core::make_solver(*worker->problem, local);
    workers_.push_back(std::move(worker));
  }

  obs::set_track_name(kMasterTrack, "dist/master");
  for (int k = 0; k < config.num_workers; ++k) {
    obs::set_track_name(worker_track(k), "dist/worker " + std::to_string(k));
  }
}

void DistributedSolver::record_event(int worker,
                                     core::ClusterEventKind kind) {
  core::ClusterEvent event;
  event.epoch = epoch_;
  event.worker = worker;
  event.kind = kind;
  events_.push_back(event);
  // Every trace-level cluster event also lands as (a) a counter, so the
  // --metrics-out report's cluster.event.* values match
  // ConvergenceTrace::count_events exactly, and (b) a trace instant on the
  // affected worker's track, so crashes and restarts are visible between the
  // solve spans of a fault-drill timeline.
  obs::metrics()
      .counter(std::string("cluster.event.") + core::cluster_event_name(kind))
      .add();
  obs::trace_instant(core::cluster_event_name(kind), worker_track(worker),
                     epoch_);
}

void DistributedSolver::handle_crash(Worker& worker, int index) {
  // The in-progress epoch (buffered or not) is lost; the worker's committed
  // weights survive because the master re-seeds the replacement shard from
  // its own assembled state on restart (DESIGN.md §8).
  worker.pending.reset();
  ++worker.crash_count;
  record_event(index, core::ClusterEventKind::kCrash);
  if (worker.crash_count > config_.max_restarts) {
    worker.status = WorkerStatus::kEvicted;
    record_event(index, core::ClusterEventKind::kEvict);
  } else {
    worker.status = WorkerStatus::kBackoff;
    worker.backoff_remaining = 1 << (worker.crash_count - 1);
  }
}

core::EpochReport DistributedSolver::run_epoch() {
  const util::WallTimer timer;
  ++epoch_;
  obs::TraceSpan epoch_span("dist/epoch", kMasterTrack, epoch_);
  obs::metrics().counter("cluster.epochs").add();
  const auto f = config_.formulation;
  const auto n = static_cast<double>(global_problem_.num_examples());
  const double lambda = config_.lambda;
  const int local_passes = config_.local_epochs_per_round;
  const auto num_workers = workers_.size();

  enum class Outcome { kIdle, kFresh, kLate };
  std::vector<Outcome> outcome(num_workers, Outcome::kIdle);
  std::vector<double> run_seconds(num_workers, 0.0);
  std::vector<FaultEvent> fault(num_workers);
  std::vector<bool> ran(num_workers, false);
  std::uint64_t updates = 0;

  // ---- Phase 1: advance every worker's state machine; run the active
  // ones.  Every worker consumes exactly `local_passes` permutations per
  // outer epoch — run, buffered, or skipped — so that stream positions stay
  // the pure function of the epoch counter that restore() relies on.
  for (std::size_t k = 0; k < num_workers; ++k) {
    auto& worker = *workers_[k];
    const int index = static_cast<int>(k);

    if (worker.status == WorkerStatus::kEvicted) {
      worker.solver->skip_epoch_randomness(local_passes);
      continue;
    }
    if (worker.status == WorkerStatus::kBackoff) {
      worker.solver->skip_epoch_randomness(local_passes);
      if (--worker.backoff_remaining <= 0) {
        worker.status = WorkerStatus::kActive;
        record_event(index, core::ClusterEventKind::kRestart);
      }
      continue;
    }

    fault[k] = injector_.query(epoch_, index);

    if (worker.status == WorkerStatus::kInFlight) {
      worker.solver->skip_epoch_randomness(local_passes);
      if (fault[k].kind == FaultKind::kCrash) {
        handle_crash(worker, index);
        continue;
      }
      auto& pending = *worker.pending;
      if (++pending.rounds_done >= pending.rounds_needed) {
        outcome[k] = Outcome::kLate;  // incorporated below
      }
      continue;
    }

    // Active worker.  A crash costs the whole local epoch; nothing to run.
    if (fault[k].kind == FaultKind::kCrash) {
      worker.solver->skip_epoch_randomness(local_passes);
      handle_crash(worker, index);
      continue;
    }

    // Broadcast: the worker starts its epoch from the master's shared
    // vector (its local copy then diverges as it applies local updates).
    obs::TraceSpan solve_span("dist/local_solve", worker_track(index),
                              epoch_);
    auto& state = worker.solver->mutable_state();
    state.shared.assign(shared_.begin(), shared_.end());
    worker.weights_start = state.weights;
    double local_seconds = 0.0;
    for (int pass = 0; pass < local_passes; ++pass) {
      local_seconds += worker.solver->run_epoch().sim_seconds;
    }
    ran[k] = true;
    run_seconds[k] = local_seconds;
    updates += state.weights.size();
  }

  // Phases 2–4 compute values consumed across phase boundaries, so their
  // spans use explicit begin timestamps instead of nested RAII scopes.
  const bool tracing = obs::trace_enabled();

  // ---- Phase 2: the straggler deadline, from the timing breakdown: the
  // master waits grace x (slowest healthy compute + network round) before
  // aggregating without the laggards.
  const double wait_begin_us = tracing ? obs::trace_now_us() : 0.0;
  const std::size_t shared_bytes =
      static_cast<std::size_t>(global_workload_.shared_dim) * sizeof(float);
  const double net_round =
      config_.network.reduce_seconds(shared_bytes, config_.num_workers) +
      config_.network.broadcast_seconds(shared_bytes, config_.num_workers);
  double healthy_max = 0.0;
  double runner_max = 0.0;
  for (std::size_t k = 0; k < num_workers; ++k) {
    if (!ran[k]) continue;
    runner_max = std::max(runner_max, run_seconds[k]);
    if (fault[k].kind != FaultKind::kStall) {
      healthy_max = std::max(healthy_max, run_seconds[k]);
    }
  }
  if (healthy_max == 0.0) healthy_max = runner_max;  // every runner stalled
  last_deadline_seconds_ =
      config_.straggler_grace * (healthy_max + net_round);
  if (tracing) {
    obs::trace_complete("dist/straggler_wait", wait_begin_us,
                        obs::trace_now_us() - wait_begin_us, kMasterTrack,
                        epoch_);
  }

  // ---- Phase 3: transit outcomes for this round's runners.
  const double reduce_begin_us = tracing ? obs::trace_now_us() : 0.0;
  double compute_max = 0.0;  // slowest delta that the master waited for
  bool any_deadline_miss = false;
  for (std::size_t k = 0; k < num_workers; ++k) {
    if (!ran[k]) continue;
    auto& worker = *workers_[k];
    auto& state = worker.solver->mutable_state();
    const int index = static_cast<int>(k);
    const double effective =
        fault[k].kind == FaultKind::kStall
            ? run_seconds[k] * std::max(1.0, fault[k].stall_factor)
            : run_seconds[k];

    if (fault[k].kind == FaultKind::kStall &&
        effective > last_deadline_seconds_) {
      // Missed the deadline: buffer the stale delta and keep computing.
      // Rolling the visible weights back to the epoch start keeps the
      // assembled global state consistent until the delta finally lands.
      PendingDelta pending;
      pending.dshared.resize(shared_.size());
      for (std::size_t i = 0; i < shared_.size(); ++i) {
        pending.dshared[i] =
            static_cast<double>(state.shared[i]) - shared_[i];
      }
      pending.dweights.resize(state.weights.size());
      for (std::size_t j = 0; j < state.weights.size(); ++j) {
        pending.dweights[j] = static_cast<float>(
            static_cast<double>(state.weights[j]) - worker.weights_start[j]);
      }
      pending.rounds_needed = std::max(
          2, static_cast<int>(std::ceil(effective / last_deadline_seconds_)));
      pending.rounds_done = 1;
      state.weights = worker.weights_start;
      worker.pending = std::move(pending);
      worker.status = WorkerStatus::kInFlight;
      any_deadline_miss = true;
      record_event(index, core::ClusterEventKind::kDeadlineMiss);
      continue;
    }

    if (fault[k].kind == FaultKind::kDropDelta) {
      state.weights = worker.weights_start;
      record_event(index, core::ClusterEventKind::kDeltaDropped);
      continue;
    }

    if (fault[k].kind == FaultKind::kCorruptDelta) {
      // The worker checksums its delta before the reduce; the master
      // recomputes on receipt.  Corruption in transit fails the check and
      // the delta is discarded — never silently aggregated.
      std::vector<double> received(shared_.size());
      for (std::size_t i = 0; i < shared_.size(); ++i) {
        received[i] = static_cast<double>(state.shared[i]) - shared_[i];
      }
      const std::uint64_t sent = delta_checksum(received);
      corrupt_in_transit(received);
      if (delta_checksum(received) != sent) {
        state.weights = worker.weights_start;
        record_event(index, core::ClusterEventKind::kDeltaCorrupted);
        continue;
      }
      // Unreachable (a bit flip always changes the FNV stream), but if the
      // check ever passed the delta is byte-identical and safe to use.
    }

    outcome[k] = Outcome::kFresh;
    compute_max = std::max(compute_max, effective);
  }

  // ---- Phase 4: Reduce the surviving deltas on the master.
  std::vector<double> dshared(shared_.size(), 0.0);
  PrimalGammaTerms pterms;
  DualGammaTerms dterms;
  int contributors = 0;
  for (std::size_t k = 0; k < num_workers; ++k) {
    if (outcome[k] == Outcome::kIdle) continue;
    auto& worker = *workers_[k];
    const auto& state = worker.solver->state();
    const auto labels = worker.shard.labels();
    ++contributors;
    if (outcome[k] == Outcome::kFresh) {
      // Δw^(t,k), summed straight into the master's accumulator (Reduce).
      for (std::size_t i = 0; i < shared_.size(); ++i) {
        dshared[i] += static_cast<double>(state.shared[i]) - shared_[i];
      }
      // Local scalar terms for adaptive aggregation (Algorithm 4):
      // computable on each worker because coordinate ownership is disjoint.
      for (std::size_t j = 0; j < state.weights.size(); ++j) {
        const double start = worker.weights_start[j];
        const double delta = static_cast<double>(state.weights[j]) - start;
        if (f == core::Formulation::kPrimal) {
          pterms.beta_dot_dbeta += start * delta;
          pterms.dbeta_sq += delta * delta;
        } else {
          dterms.dalpha_dot_y += delta * labels[j];
          dterms.dalpha_dot_alpha += start * delta;
          dterms.dalpha_sq += delta * delta;
        }
      }
    } else {
      // A straggler's stale delta, finally off the wire.  The invariant is
      // linear in the delta, so incorporating it late is exact; only the
      // descent quality pays for the staleness (PASSCoDe).
      const auto& pending = *worker.pending;
      for (std::size_t i = 0; i < shared_.size(); ++i) {
        dshared[i] += pending.dshared[i];
      }
      for (std::size_t j = 0; j < pending.dweights.size(); ++j) {
        const double start = state.weights[j];  // rolled back at buffering
        const double delta = pending.dweights[j];
        if (f == core::Formulation::kPrimal) {
          pterms.beta_dot_dbeta += start * delta;
          pterms.dbeta_sq += delta * delta;
        } else {
          dterms.dalpha_dot_y += delta * labels[j];
          dterms.dalpha_dot_alpha += start * delta;
          dterms.dalpha_sq += delta * delta;
        }
      }
    }
  }
  last_contributors_ = contributors;
  if (tracing) {
    obs::trace_complete("dist/reduce", reduce_begin_us,
                        obs::trace_now_us() - reduce_begin_us, kMasterTrack,
                        contributors);
  }

  // ---- Master-side terms and the aggregation parameter, rescaled to the
  // workers that actually delivered (degraded-mode aggregation).
  const double fallback_gamma =
      contributors > 0 ? 1.0 / contributors : 0.0;
  if (contributors == 0) {
    last_gamma_ = 0.0;  // nothing landed; the model is untouched this round
  } else if (config_.aggregation == AggregationMode::kAveraging) {
    last_gamma_ = fallback_gamma;
  } else if (config_.aggregation == AggregationMode::kFixed) {
    last_gamma_ = config_.fixed_gamma;
  } else {
    double shared_sq = 0.0;
    double dshared_sq = 0.0;
    double shared_dot_dshared = 0.0;
    for (std::size_t i = 0; i < shared_.size(); ++i) {
      shared_sq += static_cast<double>(shared_[i]) * shared_[i];
      dshared_sq += dshared[i] * dshared[i];
      shared_dot_dshared += static_cast<double>(shared_[i]) * dshared[i];
    }
    // Once the model has converged to 32-bit precision the epoch's update
    // direction is rounding noise and the exact line search is
    // ill-conditioned; fall back to averaging there (it no longer matters).
    const bool direction_is_noise =
        dshared_sq <= 1e-10 * std::max(1.0, shared_sq);
    if (direction_is_noise) {
      last_gamma_ = fallback_gamma;
    } else if (f == core::Formulation::kPrimal) {
      const auto labels = global_->labels();
      pterms.dw_sq = dshared_sq;
      for (std::size_t i = 0; i < shared_.size(); ++i) {
        pterms.y_minus_w_dot_dw +=
            (static_cast<double>(labels[i]) - shared_[i]) * dshared[i];
      }
      last_gamma_ =
          optimal_gamma_primal(pterms, n, lambda, fallback_gamma);
    } else {
      dterms.dwbar_sq = dshared_sq;
      dterms.wbar_dot_dwbar = shared_dot_dshared;
      last_gamma_ = optimal_gamma_dual(dterms, n, lambda, fallback_gamma);
    }
  }

  // ---- Apply the scaled update on the master and rescale the contributing
  // workers' weight updates by the same γ so shared == A·weights stays
  // exact.  Excluded workers were rolled back to their epoch start, so they
  // contribute (exactly) nothing to either side.  This is the broadcast leg:
  // the γ-scaled model every worker starts from next round.
  const double bcast_begin_us = tracing ? obs::trace_now_us() : 0.0;
  if (contributors > 0) {
    for (std::size_t i = 0; i < shared_.size(); ++i) {
      shared_[i] =
          static_cast<float>(shared_[i] + last_gamma_ * dshared[i]);
    }
    for (std::size_t k = 0; k < num_workers; ++k) {
      if (outcome[k] == Outcome::kIdle) continue;
      auto& worker = *workers_[k];
      auto& state = worker.solver->mutable_state();
      if (outcome[k] == Outcome::kFresh) {
        for (std::size_t j = 0; j < state.weights.size(); ++j) {
          const double start = worker.weights_start[j];
          const double delta =
              static_cast<double>(state.weights[j]) - start;
          state.weights[j] = static_cast<float>(start + last_gamma_ * delta);
        }
      } else {
        const auto& pending = *worker.pending;
        for (std::size_t j = 0; j < state.weights.size(); ++j) {
          state.weights[j] = static_cast<float>(
              state.weights[j] + last_gamma_ * pending.dweights[j]);
        }
        worker.pending.reset();
        worker.status = WorkerStatus::kActive;
        record_event(static_cast<int>(k),
                     core::ClusterEventKind::kLateDelta);
      }
    }
  }

  if (tracing) {
    obs::trace_complete("dist/broadcast", bcast_begin_us,
                        obs::trace_now_us() - bcast_begin_us, kMasterTrack,
                        epoch_);
  }

  // ---- Simulated time accounting (paper-scale dimensions). ----
  const auto shared_elems = static_cast<double>(global_workload_.shared_dim);
  const auto coords_per_worker =
      static_cast<double>(global_workload_.num_coordinates) /
      config_.num_workers;

  EpochBreakdown breakdown;
  // The master waits for the slowest delta it aggregated — or, when a
  // straggler blew the deadline, for the full grace window before giving
  // up on it.
  breakdown.compute_solver =
      any_deadline_miss
          ? std::max(compute_max, config_.straggler_grace * healthy_max)
          : compute_max;
  // Host arithmetic: forming Δw and applying γΔw (2 passes over the shared
  // vector on each host, in parallel across workers => counted once), plus
  // forming / rescaling the local weight deltas (3 passes over the local
  // coordinates).
  breakdown.compute_host =
      config_.local_solver.cpu_cost.seconds_per_vector_element *
      (3.0 * shared_elems + 3.0 * coords_per_worker);
  if (gpu_local_) {
    // Shared vector off the device after the local epoch and the new one
    // back on, through pinned buffers (Section V.A).
    gpusim::PcieLink pcie;
    breakdown.pcie = pcie.transfer_seconds(shared_bytes, /*pinned=*/true) +
                     pcie.transfer_seconds(shared_bytes, /*pinned=*/true);
  }
  breakdown.network = net_round;
  if (config_.aggregation == AggregationMode::kAdaptive) {
    // A few scalars ride along with the reduce/broadcast: one extra
    // latency-bound message each way.
    breakdown.network += config_.network.reduce_seconds(
                             4 * sizeof(double), config_.num_workers) +
                         config_.network.broadcast_seconds(
                             sizeof(double), config_.num_workers);
  }
  last_breakdown_ = breakdown;

  core::EpochReport report;
  report.coordinate_updates = updates;
  report.sim_seconds = breakdown.total();
  report.wall_seconds = timer.seconds();
  return report;
}

double DistributedSolver::duality_gap(util::ThreadPool* pool) const {
  const auto weights = global_weights();
  return global_problem_.duality_gap(config_.formulation, weights, shared_,
                                     pool);
}

void DistributedSolver::set_merge_every(int merge_every) {
  for (auto& worker : workers_) {
    worker->solver->set_merge_every(merge_every);
  }
}

double DistributedSolver::setup_sim_seconds() const {
  double slowest = 0.0;
  for (const auto& worker : workers_) {
    slowest = std::max(slowest, worker->solver->setup_sim_seconds());
  }
  return slowest;
}

std::vector<float> DistributedSolver::global_weights() const {
  std::vector<float> weights(
      global_problem_.num_coordinates(config_.formulation), 0.0F);
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    const auto& local = workers_[k]->solver->state().weights;
    const auto& owned = partition_.owned[k];
    for (std::size_t j = 0; j < owned.size(); ++j) {
      weights[owned[j]] = local[j];
    }
  }
  return weights;
}

WorkerStatus DistributedSolver::worker_status(int worker) const {
  return workers_.at(static_cast<std::size_t>(worker))->status;
}

core::SavedModel DistributedSolver::checkpoint() const {
  core::SavedModel saved;
  saved.formulation = config_.formulation;
  saved.lambda = config_.lambda;
  saved.epoch = static_cast<std::uint32_t>(epoch_);
  saved.weights = global_weights();
  saved.shared = shared_;
  return saved;
}

void DistributedSolver::restore(const core::SavedModel& saved) {
  if (epoch_ != 0) {
    throw std::logic_error(
        "DistributedSolver::restore: must be called on a fresh solver "
        "(epochs have already run)");
  }
  if (saved.formulation != config_.formulation) {
    throw std::invalid_argument(
        "DistributedSolver::restore: checkpoint formulation mismatch");
  }
  if (saved.weights.size() !=
          static_cast<std::size_t>(
              global_problem_.num_coordinates(config_.formulation)) ||
      saved.shared.size() != shared_.size()) {
    throw std::invalid_argument(
        "DistributedSolver::restore: checkpoint dimensions do not match "
        "the dataset/partition");
  }
  if (saved.lambda != config_.lambda) {
    throw std::invalid_argument(
        "DistributedSolver::restore: checkpoint lambda " +
        std::to_string(saved.lambda) + " != configured " +
        std::to_string(config_.lambda));
  }

  shared_.assign(saved.shared.begin(), saved.shared.end());
  const int skip =
      static_cast<int>(saved.epoch) * config_.local_epochs_per_round;
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    auto& worker = *workers_[k];
    auto& state = worker.solver->mutable_state();
    const auto& owned = partition_.owned[k];
    for (std::size_t j = 0; j < owned.size(); ++j) {
      state.weights[j] = saved.weights[owned[j]];
    }
    state.shared.assign(shared_.begin(), shared_.end());
    worker.weights_start = state.weights;
    // Realign the permutation stream: every worker consumes exactly
    // local_epochs_per_round shuffles per outer epoch no matter what
    // happened to it, so position == epoch is an invariant and a resumed
    // fault-free run replays the original bit-for-bit.
    worker.solver->skip_epoch_randomness(skip);
    // A resume is a cluster-wide cold restart: everyone comes back.
    worker.status = WorkerStatus::kActive;
    worker.crash_count = 0;
    worker.backoff_remaining = 0;
    worker.pending.reset();
  }
  epoch_ = static_cast<int>(saved.epoch);
}

namespace {

// Master-side checkpoint: one span for the model write, plus the same
// counter + instant pairing record_event gives worker events, so the
// metrics report's cluster.event.checkpoint matches the trace's
// kCheckpoint count.
void write_checkpoint(const CheckpointConfig& ckpt,
                      const DistributedSolver& solver, int epoch,
                      core::ConvergenceTrace& trace) {
  obs::TraceSpan span("train/checkpoint", kMasterTrack, epoch);
  core::write_model_file(ckpt.path, solver.checkpoint());
  trace.add_event({epoch, -1, core::ClusterEventKind::kCheckpoint});
  obs::metrics().counter("cluster.event.checkpoint").add();
  obs::trace_instant("checkpoint", kMasterTrack, epoch);
}

}  // namespace

core::ConvergenceTrace run_distributed(DistributedSolver& solver,
                                       const core::RunOptions& options,
                                       const CheckpointConfig& ckpt) {
  core::ConvergenceTrace trace;
  double sim_total =
      options.include_setup_time ? solver.setup_sim_seconds() : 0.0;
  double wall_total = 0.0;
  const int start_epoch = solver.current_epoch();
  std::size_t seen_events = solver.events().size();
  int last_checkpointed = start_epoch;
  const int interval = core::effective_gap_interval(options);
  if (options.merge_every != 0) {
    solver.set_merge_every(options.merge_every);
  }
  // Same crossover as run_solver: only pay for a pool when the global gap
  // evaluation is predicted to beat the serial pass on this host.
  const int gap_threads = core::pool_dispatch().dispatch_threads(
      solver.global_problem().dataset().nnz(), options.gap_threads);
  std::unique_ptr<util::ThreadPool> gap_pool;
  if (gap_threads > 1) {
    gap_pool = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(gap_threads));
  }
  for (int epoch = start_epoch + 1; epoch <= options.max_epochs; ++epoch) {
    const auto report = solver.run_epoch();
    sim_total += report.sim_seconds;
    wall_total += report.wall_seconds;
    const auto& events = solver.events();
    for (; seen_events < events.size(); ++seen_events) {
      trace.add_event(events[seen_events]);
    }
    if (ckpt.enabled() && epoch % ckpt.every_epochs == 0) {
      write_checkpoint(ckpt, solver, epoch, trace);
      last_checkpointed = epoch;
    }
    if (epoch % interval == 0 || epoch == options.max_epochs) {
      core::TracePoint point;
      point.epoch = epoch;
      {
        obs::TraceSpan span("train/gap_eval", kMasterTrack, epoch);
        point.gap = solver.duality_gap(gap_pool.get());
      }
      obs::metrics().counter("train.gap_evals").add();
      point.sim_seconds = sim_total;
      point.wall_seconds = wall_total;
      point.gamma = solver.last_gamma();
      point.contributors = solver.last_contributors();
      trace.add(point);
      if (options.target_gap > 0.0 && point.gap <= options.target_gap) break;
    }
  }
  // A final checkpoint so a later --resume continues from exactly where
  // this run stopped (early target-gap exit included).
  if (ckpt.enabled() && solver.current_epoch() > last_checkpointed) {
    write_checkpoint(ckpt, solver, solver.current_epoch(), trace);
  }
  return trace;
}

}  // namespace tpa::cluster
