// Interconnect timing models for the simulated cluster.
//
// The paper's distributed experiments run on (a) four Xeon machines with up
// to two workers each over 10 Gbit ethernet (Figs. 3-6, 8a, 9) and (b) four
// Titan X GPUs in one machine communicating over PCIe (Fig. 8b, 10).  The
// per-epoch communication is one Reduce of the shared-vector deltas to the
// master plus one Broadcast of the new shared vector (Open MPI in the
// paper); both are modelled as binomial trees:
//   time = ceil(log2 K) * (latency + bytes / effective_bandwidth).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tpa::cluster {

struct NetworkModel {
  std::string name;
  double latency_s = 0.0;
  double bandwidth_gbps = 0.0;  // effective GB/s per link

  /// 10 Gbit ethernet: ~1.05 GB/s effective, 50 µs latency.
  static NetworkModel ethernet_10g();
  /// 100 Gbit ethernet (the paper's suggested upgrade, Section V.A).
  static NetworkModel ethernet_100g();
  /// PCIe gen3 x16 peer-to-peer within one machine.
  static NetworkModel pcie_peer();

  /// Rejects physically meaningless parameters: bandwidth must be positive
  /// (the timing formulas divide by it) and latency non-negative.  Throws
  /// std::invalid_argument.  Call sites that accept user-configured models
  /// (the cluster drivers, the placement cost model) validate up front so a
  /// bad model fails loudly instead of producing inf/negative round times.
  void validate() const;

  double point_to_point_seconds(std::size_t bytes) const noexcept;

  /// Tree Reduce of `bytes` from K workers to the master; 0 for K <= 1.
  double reduce_seconds(std::size_t bytes, int workers) const noexcept;

  /// Tree Broadcast of `bytes` from the master to K workers; 0 for K <= 1.
  double broadcast_seconds(std::size_t bytes, int workers) const noexcept;

  /// Reduce followed by Broadcast (the per-epoch aggregation pattern).
  double allreduce_seconds(std::size_t bytes, int workers) const noexcept;
};

}  // namespace tpa::cluster
