#include "cluster/partition.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/convert.hpp"
#include "util/permutation.hpp"

namespace tpa::cluster {
namespace {

/// Scales the global PaperScale onto a shard: the partitioned dimension and
/// nnz shrink by the shard's actual fraction; the replicated dimension stays
/// global (the shared vector is not partitioned).
void inherit_paper_scale(const data::Dataset& global, data::Dataset& shard,
                         bool by_feature) {
  const auto& scale = global.paper_scale();
  if (!scale.has_value() || global.nnz() == 0) return;
  data::PaperScale local = *scale;
  const double nnz_fraction = static_cast<double>(shard.nnz()) /
                              static_cast<double>(global.nnz());
  local.nnz = static_cast<std::uint64_t>(
      static_cast<double>(scale->nnz) * nnz_fraction);
  if (by_feature) {
    const double coord_fraction =
        static_cast<double>(shard.num_features()) /
        static_cast<double>(global.num_features());
    local.features = static_cast<std::uint64_t>(
        static_cast<double>(scale->features) * coord_fraction);
  } else {
    const double coord_fraction =
        static_cast<double>(shard.num_examples()) /
        static_cast<double>(global.num_examples());
    local.examples = static_cast<std::uint64_t>(
        static_cast<double>(scale->examples) * coord_fraction);
  }
  shard.set_paper_scale(local);
}

/// Shared validation for the prescribed-sizes constructors: every worker
/// must own at least one coordinate and the sizes must tile [0, n) exactly.
void validate_sizes(Index num_coordinates, std::span<const Index> sizes) {
  if (sizes.empty()) {
    throw std::invalid_argument("Partition: sizes must be non-empty");
  }
  std::uint64_t total = 0;
  for (const auto size : sizes) {
    if (size == 0) {
      throw std::invalid_argument(
          "Partition: every worker must own at least one coordinate");
    }
    total += size;
  }
  if (total != num_coordinates) {
    throw std::invalid_argument(
        "Partition: sizes sum to " + std::to_string(total) + " but " +
        std::to_string(num_coordinates) + " coordinates were requested");
  }
}

}  // namespace

Partition Partition::random(Index num_coordinates, int workers,
                            util::Rng& rng) {
  if (workers <= 0) {
    throw std::invalid_argument("Partition: workers must be positive");
  }
  Partition partition;
  partition.owned.resize(static_cast<std::size_t>(workers));
  const auto order = util::random_permutation(num_coordinates, rng);
  // Deal the shuffled coordinates round-robin so shard sizes differ by at
  // most one.
  for (std::size_t i = 0; i < order.size(); ++i) {
    partition.owned[i % static_cast<std::size_t>(workers)].push_back(
        order[i]);
  }
  for (auto& coords : partition.owned) {
    std::sort(coords.begin(), coords.end());
  }
  return partition;
}

Partition Partition::random_weighted(Index num_coordinates,
                                     std::span<const Index> sizes,
                                     util::Rng& rng) {
  validate_sizes(num_coordinates, sizes);
  Partition partition;
  partition.owned.resize(sizes.size());
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    partition.owned[k].reserve(sizes[k]);
  }
  const auto order = util::random_permutation(num_coordinates, rng);
  // Same permutation draw and round-robin deal as random(), but a worker at
  // its quota is skipped.  With uniform sizes no worker ever fills before
  // its turn comes round, so this is bit-identical to random() there.
  std::size_t next = 0;
  for (const auto coordinate : order) {
    while (partition.owned[next].size() >=
           static_cast<std::size_t>(sizes[next])) {
      next = (next + 1) % sizes.size();
    }
    partition.owned[next].push_back(coordinate);
    next = (next + 1) % sizes.size();
  }
  for (auto& coords : partition.owned) {
    std::sort(coords.begin(), coords.end());
  }
  return partition;
}

Partition Partition::contiguous_sizes(Index num_coordinates,
                                      std::span<const Index> sizes) {
  validate_sizes(num_coordinates, sizes);
  Partition partition;
  partition.owned.resize(sizes.size());
  Index start = 0;
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    partition.owned[k].resize(sizes[k]);
    for (Index j = 0; j < sizes[k]; ++j) {
      partition.owned[k][j] = start + j;
    }
    start += sizes[k];
  }
  return partition;
}

std::vector<Index> Partition::sizes() const {
  std::vector<Index> result(owned.size());
  for (std::size_t k = 0; k < owned.size(); ++k) {
    result[k] = static_cast<Index>(owned[k].size());
  }
  return result;
}

Partition Partition::contiguous(Index num_coordinates, int workers) {
  if (workers <= 0) {
    throw std::invalid_argument("Partition: workers must be positive");
  }
  Partition partition;
  partition.owned.resize(static_cast<std::size_t>(workers));
  const auto per_worker =
      (num_coordinates + static_cast<Index>(workers) - 1) /
      static_cast<Index>(workers);
  for (Index c = 0; c < num_coordinates; ++c) {
    partition.owned[c / per_worker].push_back(c);
  }
  return partition;
}

bool Partition::covers(Index num_coordinates) const {
  std::vector<bool> seen(num_coordinates, false);
  for (const auto& coords : owned) {
    for (const auto c : coords) {
      if (c >= num_coordinates || seen[c]) return false;
      seen[c] = true;
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

data::Dataset make_feature_shard(const data::Dataset& global,
                                 std::span<const Index> cols) {
  sparse::CooBuilder coo(global.num_examples(),
                         static_cast<Index>(cols.size()));
  const auto& by_col = global.by_col();
  for (std::size_t local = 0; local < cols.size(); ++local) {
    const auto view = by_col.col(cols[local]);
    for (std::size_t k = 0; k < view.nnz(); ++k) {
      coo.add(view.indices[k], static_cast<Index>(local), view.values[k]);
    }
  }
  std::vector<float> labels(global.labels().begin(), global.labels().end());
  data::Dataset shard(global.name() + "_fshard", sparse::coo_to_csr(coo),
                      std::move(labels));
  inherit_paper_scale(global, shard, /*by_feature=*/true);
  return shard;
}

data::Dataset make_example_shard(const data::Dataset& global,
                                 std::span<const Index> rows) {
  const auto& by_row = global.by_row();
  std::vector<sparse::Offset> offsets{0};
  offsets.reserve(rows.size() + 1);
  sparse::Offset nnz = 0;
  for (const auto r : rows) {
    nnz += by_row.row_nnz(r);
    offsets.push_back(nnz);
  }
  std::vector<Index> indices;
  std::vector<sparse::Value> values;
  std::vector<float> labels;
  indices.reserve(nnz);
  values.reserve(nnz);
  labels.reserve(rows.size());
  for (const auto r : rows) {
    const auto view = by_row.row(r);
    indices.insert(indices.end(), view.indices.begin(), view.indices.end());
    values.insert(values.end(), view.values.begin(), view.values.end());
    labels.push_back(global.labels()[r]);
  }
  sparse::CsrMatrix matrix(static_cast<Index>(rows.size()), by_row.cols(),
                           std::move(offsets), std::move(indices),
                           std::move(values));
  data::Dataset shard(global.name() + "_eshard", std::move(matrix),
                      std::move(labels));
  inherit_paper_scale(global, shard, /*by_feature=*/false);
  return shard;
}

data::Dataset make_shard(const data::Dataset& global, core::Formulation f,
                         std::span<const Index> coordinates) {
  return f == core::Formulation::kPrimal
             ? make_feature_shard(global, coordinates)
             : make_example_shard(global, coordinates);
}

}  // namespace tpa::cluster
