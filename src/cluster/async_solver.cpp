#include "cluster/async_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "cluster/delta_codec.hpp"
#include "gpusim/device.hpp"
#include "sparse/io_binary.hpp"
#include "util/timer.hpp"

namespace tpa::cluster {
namespace {

constexpr char kAsyncStateMagic[4] = {'T', 'P', 'A', 'A'};
constexpr std::uint32_t kAsyncStateVersion = 1;

struct AsyncStateHeader {
  std::uint32_t format_version = kAsyncStateVersion;
  std::uint32_t num_workers = 0;
  std::uint64_t round = 0;
  std::uint64_t version = 0;
  std::uint64_t seed = 0;
};

struct WorkerRecord {
  std::uint64_t draws_consumed = 0;
  std::uint32_t status = 0;
  std::uint32_t crash_count = 0;
  double restart_at = 0.0;
};

}  // namespace

const char* staleness_policy_name(StalenessPolicy policy) {
  return policy == StalenessPolicy::kDamp ? "damp" : "reject";
}

StalenessPolicy parse_staleness_policy(const std::string& name) {
  if (name == "damp") return StalenessPolicy::kDamp;
  if (name == "reject") return StalenessPolicy::kReject;
  throw std::invalid_argument("unknown staleness policy '" + name +
                              "' (damp | reject)");
}

const char* async_worker_status_name(AsyncWorkerStatus status) {
  switch (status) {
    case AsyncWorkerStatus::kComputing:
      return "computing";
    case AsyncWorkerStatus::kBackoff:
      return "backoff";
    case AsyncWorkerStatus::kDetached:
      return "detached";
  }
  return "?";
}

std::string async_state_path(const std::string& model_path) {
  return model_path + ".async";
}

void write_async_state_file(const std::string& path,
                            const AsyncCheckpointState& state) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("async state: cannot open " + tmp +
                               " for writing");
    }
    sparse::Fnv1a checksum;
    const auto write_raw = [&](const void* data, std::size_t bytes) {
      out.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(bytes));
      checksum.update(data, bytes);
    };
    write_raw(kAsyncStateMagic, sizeof(kAsyncStateMagic));
    AsyncStateHeader header;
    header.num_workers = static_cast<std::uint32_t>(state.workers.size());
    header.round = state.round;
    header.version = state.version;
    header.seed = state.seed;
    write_raw(&header, sizeof(header));
    for (const auto& worker : state.workers) {
      WorkerRecord record;
      record.draws_consumed = worker.draws_consumed;
      record.status = worker.status;
      record.crash_count = worker.crash_count;
      record.restart_at = worker.restart_at;
      write_raw(&record, sizeof(record));
    }
    const std::uint64_t digest = checksum.digest();
    out.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
    if (!out) {
      throw std::runtime_error("async state: write to " + tmp + " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("async state: cannot rename " + tmp + " to " +
                             path);
  }
}

AsyncCheckpointState read_async_state_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("async state: cannot open " + path);
  }
  sparse::Fnv1a checksum;
  const auto read_raw = [&](void* data, std::size_t bytes, const char* what) {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    if (static_cast<std::size_t>(in.gcount()) != bytes) {
      throw std::runtime_error("async state: truncated reading " +
                               std::string(what) + " from " + path);
    }
    checksum.update(data, bytes);
  };
  char magic[4];
  read_raw(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kAsyncStateMagic, sizeof(kAsyncStateMagic)) != 0) {
    throw std::runtime_error("async state: bad magic in " + path);
  }
  AsyncStateHeader header;
  read_raw(&header, sizeof(header), "header");
  if (header.format_version != kAsyncStateVersion) {
    throw std::runtime_error("async state: unsupported format version " +
                             std::to_string(header.format_version) + " in " +
                             path);
  }
  AsyncCheckpointState state;
  state.round = header.round;
  state.version = header.version;
  state.seed = header.seed;
  state.workers.resize(header.num_workers);
  for (auto& worker : state.workers) {
    WorkerRecord record;
    read_raw(&record, sizeof(record), "worker record");
    worker.draws_consumed = record.draws_consumed;
    worker.status = record.status;
    worker.crash_count = record.crash_count;
    worker.restart_at = record.restart_at;
  }
  const std::uint64_t expected = checksum.digest();
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(stored) ||
      stored != expected) {
    throw std::runtime_error("async state: checksum mismatch in " + path);
  }
  return state;
}

AsyncSolver::AsyncSolver(const data::Dataset& global,
                         const AsyncConfig& config)
    : global_(&global),
      config_(config),
      global_problem_(global, config.lambda),
      injector_(config.faults),
      global_workload_(
          core::TimingWorkload::for_dataset(global, config.formulation)) {
  const auto dim = global_problem_.num_coordinates(config.formulation);
  validate_cluster_config("AsyncSolver", config.num_workers, dim,
                          config.formulation, config.local_epochs_per_round,
                          config.max_restarts);
  if (config.staleness_window < 0) {
    throw std::invalid_argument(
        "AsyncSolver: staleness_window must be >= 0 (0 = auto)");
  }
  if (config.delta_threshold < 0.0) {
    throw std::invalid_argument("AsyncSolver: delta_threshold must be >= 0");
  }
  for (const auto& event : config.membership) {
    if (event.round < 1 || event.worker < 0 ||
        event.worker >= config.num_workers) {
      throw std::invalid_argument(
          "AsyncSolver: membership event (round " +
          std::to_string(event.round) + ", worker " +
          std::to_string(event.worker) +
          ") must name a round >= 1 and a valid worker slot");
    }
  }
  config.network.validate();
  const bool heterogeneous = !config.fleet.empty();
  if (heterogeneous &&
      static_cast<int>(config.fleet.size()) != config.num_workers) {
    throw std::invalid_argument(
        "AsyncSolver: fleet has " + std::to_string(config.fleet.size()) +
        " devices but num_workers is " + std::to_string(config.num_workers));
  }
  gpu_local_ = heterogeneous
                   ? placement::fleet_has_gpu(config.fleet)
                   : is_gpu_solver_kind(config.local_solver.kind);

  // Same partition draw as the sync driver: with equal (seed, num_workers)
  // the two arms of an ablation own identical shards — and the same
  // placement plan for equal (fleet, placement_seed), so the sync/async
  // arms of a heterogeneous ablation stay comparable too.
  util::Rng rng(config.seed);
  if (heterogeneous) {
    placement::CostOptions cost_options;
    cost_options.local_passes = config.local_epochs_per_round;
    cost_options.seconds_per_vector_element =
        config.local_solver.cpu_cost.seconds_per_vector_element;
    if (config.compress_deltas) {
      cost_options.delta_wire_bytes = quantized_delta_wire_bytes(
          static_cast<std::size_t>(global_workload_.shared_dim));
    }
    placement::PlacementCostModel cost_model(config.fleet, dim,
                                             global_workload_, config.network,
                                             cost_options);
    placement::AnnealConfig anneal;
    anneal.seed = config.placement_seed;
    placement_result_ =
        placement::plan_placement(cost_model, config.placement, anneal);
    partition_ = Partition::random_weighted(dim, placement_result_->sizes,
                                            rng);
  } else {
    partition_ = Partition::random(dim, config.num_workers, rng);
  }
  shared_.assign(global_problem_.shared_dim(config.formulation), 0.0F);

  workers_.reserve(static_cast<std::size_t>(config.num_workers));
  for (int k = 0; k < config.num_workers; ++k) {
    auto worker = std::make_unique<Worker>();
    const core::SolverConfig local =
        heterogeneous ? config.fleet[static_cast<std::size_t>(k)]
                            .solver_config(config.local_solver)
                      : config.local_solver;
    init_worker_core(worker->core, global, partition_, k, config.formulation,
                     config.lambda, local);
    worker->gpu = heterogeneous
                      ? config.fleet[static_cast<std::size_t>(k)].is_gpu()
                      : gpu_local_;
    // Host passes scale with this slot's owned coordinates; the legacy mean
    // is kept for homogeneous configs so pre-placement timelines replay
    // bit-for-bit.
    worker->host_coords =
        heterogeneous
            ? static_cast<double>(global_workload_.num_coordinates) *
                  static_cast<double>(
                      partition_.owned[static_cast<std::size_t>(k)].size()) /
                  static_cast<double>(dim)
            : static_cast<double>(global_workload_.num_coordinates) /
                  config.num_workers;
    // Calibrate the nominal per-epoch compute time from a throwaway probe
    // solver on the same shard: the timing models are state-independent, so
    // this one number makes the whole event timeline a pure function of
    // (config, seeds) — the worker's real permutation stream stays untouched
    // and the numerics never feed back into the clock.
    core::SolverConfig probe_config = local;
    probe_config.formulation = config.formulation;
    probe_config.seed = local.seed + static_cast<std::uint64_t>(k);
    auto probe = core::make_solver(*worker->core.problem, probe_config);
    worker->compute_seconds = probe->run_epoch().sim_seconds;
    workers_.push_back(std::move(worker));
  }

  obs::set_track_name(kAsyncMasterTrack, "async/master");
  obs::set_track_name(attribution_track(kAsyncMasterTrack),
                      "async/attribution (sim)");
  for (int k = 0; k < config.num_workers; ++k) {
    obs::set_track_name(worker_track(kAsyncMasterTrack, k),
                        "async/worker " + std::to_string(k));
  }
}

void AsyncSolver::record_event(int worker, core::ClusterEventKind kind) {
  record_cluster_event(events_, round_, worker, kind, kAsyncMasterTrack);
}

int AsyncSolver::live_workers() const {
  int live = 0;
  for (const auto& worker : workers_) {
    if (worker->status != AsyncWorkerStatus::kDetached) ++live;
  }
  return live;
}

AsyncWorkerStatus AsyncSolver::worker_status(int worker) const {
  return workers_.at(static_cast<std::size_t>(worker))->status;
}

int AsyncSolver::effective_staleness_window() const {
  return config_.staleness_window > 0
             ? config_.staleness_window
             : core::cluster_staleness_window(live_workers());
}

AsyncSolver::CycleCost AsyncSolver::cycle_cost(const Worker& worker) const {
  CycleCost cost;
  const std::size_t shared_bytes =
      static_cast<std::size_t>(global_workload_.shared_dim) * sizeof(float);
  // Point-to-point pull + push instead of the sync tree: the master link is
  // modelled at the same granularity as the reduce/broadcast trees (no
  // master-side serialization), which favours neither arm — both charge one
  // latency + bytes/bw term per hop.  Compression shrinks the push (delta)
  // leg to the deterministic dense-quantized wire size; the pull leg is the
  // dense model either way.
  if (config_.compress_deltas) {
    cost.network =
        config_.network.point_to_point_seconds(shared_bytes) +
        config_.network.point_to_point_seconds(quantized_delta_wire_bytes(
            static_cast<std::size_t>(global_workload_.shared_dim)));
  } else {
    cost.network = 2.0 * config_.network.point_to_point_seconds(shared_bytes);
  }
  if (config_.aggregation == AggregationMode::kAdaptive) {
    cost.network +=
        config_.network.point_to_point_seconds(5 * sizeof(double));
  }
  const auto shared_elems = static_cast<double>(global_workload_.shared_dim);
  // Forming Δw and applying γθΔw on the master, plus forming / rescaling the
  // local weight delta — the same vector arithmetic the sync driver charges.
  // host_coords is the legacy per-worker mean for homogeneous configs and
  // this slot's placement-sized share for heterogeneous fleets.
  cost.host = config_.local_solver.cpu_cost.seconds_per_vector_element *
              (2.0 * shared_elems + 2.0 * worker.host_coords);
  if (worker.gpu) {
    gpusim::PcieLink link;
    cost.pcie = 2.0 * link.transfer_seconds(shared_bytes, /*pinned=*/true);
  }
  cost.compute = config_.local_epochs_per_round * worker.compute_seconds;
  if (worker.fault.kind == FaultKind::kStall) {
    const double slowdown = std::max(1.0, worker.fault.stall_factor) - 1.0;
    cost.stall =
        slowdown * config_.local_epochs_per_round * worker.compute_seconds;
  }
  return cost;
}

double AsyncSolver::nominal_cycle_seconds(const Worker& worker) const {
  return cycle_cost(worker).nominal();
}

double AsyncSolver::cycle_seconds(const Worker& worker) const {
  // nominal() + stall reproduces the legacy sum order bit-for-bit, so the
  // deterministic event timeline (and checkpoint replay) is unchanged.
  return cycle_cost(worker).total();
}

void AsyncSolver::handle_crash(Worker& worker, int index) {
  ++worker.crash_count;
  record_event(index, core::ClusterEventKind::kCrash);
  if (worker.crash_count > config_.max_restarts) {
    worker.status = AsyncWorkerStatus::kDetached;
    record_event(index, core::ClusterEventKind::kEvict);
  } else {
    worker.status = AsyncWorkerStatus::kBackoff;
    worker.restart_pending = true;
    worker.event_at =
        now_ + std::ldexp(nominal_cycle_seconds(worker),
                          worker.crash_count - 1);
  }
}

void AsyncSolver::discard_in_flight(Worker& worker) {
  if (!worker.busy) return;
  // The cycle's permutation draws stay consumed (draws_consumed already
  // counts them), so the stream position survives the discard.
  worker.core.solver->mutable_state().weights = worker.weights_start;
  worker.busy = false;
}

void AsyncSolver::apply_membership(int round) {
  for (const auto& event : config_.membership) {
    if (event.round != round) continue;
    auto& worker = *workers_[event.worker];
    if (event.kind == MembershipEvent::Kind::kLeave) {
      if (worker.status == AsyncWorkerStatus::kDetached) continue;
      discard_in_flight(worker);
      worker.restart_pending = false;
      worker.status = AsyncWorkerStatus::kDetached;
      record_event(event.worker, core::ClusterEventKind::kLeave);
    } else {
      if (worker.status != AsyncWorkerStatus::kDetached) continue;
      // The joiner adopts the frozen partition: its committed weights are
      // already the master's view of those coordinates, and its first pull
      // cold-starts it from the master's current shared vector.
      worker.status = AsyncWorkerStatus::kComputing;
      worker.crash_count = 0;
      worker.restart_pending = false;
      record_event(event.worker, core::ClusterEventKind::kJoin);
    }
  }
}

void AsyncSolver::schedule_cycle(int index) {
  auto& worker = *workers_[index];
  const int passes = config_.local_epochs_per_round;
  // One fault draw per (round, worker), so a crash cannot re-fire on the
  // restart path within the same round and spiral straight to eviction.
  if (worker.fault_round != round_) {
    worker.round_fault = injector_.query(round_, index);
    worker.fault_round = round_;
    worker.crashed_this_round = false;
  }
  FaultEvent fault = worker.round_fault;
  if (fault.kind == FaultKind::kCrash && worker.crashed_this_round) {
    fault.kind = FaultKind::kNone;
  }

  if (fault.kind == FaultKind::kCrash) {
    // The crash costs the whole local epoch's randomness, like the sync
    // driver: stream positions advance whether or not the work survives.
    worker.crashed_this_round = true;
    worker.core.solver->skip_epoch_randomness(passes);
    worker.draws_consumed += static_cast<std::uint64_t>(passes);
    handle_crash(worker, index);
    return;
  }

  worker.busy = true;
  worker.fault = fault;
  worker.pulled_version = version_;
  worker.pulled_shared = shared_;
  // Pull arrow: the master publishes its current vector to this worker.
  const std::uint64_t pull_flow = ++flow_seq_;
  obs::trace_flow_begin("flow/pull", pull_flow, kAsyncMasterTrack);
  auto& state = worker.core.solver->mutable_state();
  state.shared.assign(shared_.begin(), shared_.end());
  worker.weights_start = state.weights;
  {
    obs::TraceSpan span("async/local_solve",
                        worker_track(kAsyncMasterTrack, index), round_);
    obs::trace_flow_end("flow/pull", pull_flow,
                        worker_track(kAsyncMasterTrack, index));
    for (int pass = 0; pass < passes; ++pass) {
      worker.core.solver->run_epoch();
    }
    // Push arrow: opened at solve end, closed when the master absorbs this
    // cycle in complete_cycle.
    worker.push_flow_id = ++flow_seq_;
    obs::trace_flow_begin("flow/push", worker.push_flow_id,
                          worker_track(kAsyncMasterTrack, index));
  }
  worker.draws_consumed += static_cast<std::uint64_t>(passes);
  worker.event_at = now_ + cycle_seconds(worker);
}

void AsyncSolver::complete_cycle(int index, double segment_seconds) {
  auto& worker = *workers_[index];
  worker.busy = false;
  auto& state = worker.core.solver->mutable_state();
  ++pushes_this_round_;
  obs::metrics().counter("cluster.async.pushes").add();
  obs::trace_flow_end("flow/push", worker.push_flow_id, kAsyncMasterTrack);
  const std::uint64_t staleness = version_ - worker.pulled_version;
  obs::metrics()
      .histogram("cluster.async.staleness")
      .record(static_cast<double>(staleness));

  // Attribution: charge `seconds` of master critical path to this cycle's
  // cost terms, pro rata (the stall share is time spent waiting on an
  // injected straggler, not useful compute).
  const CycleCost cost = cycle_cost(worker);
  const auto charge_split = [&](double seconds) {
    const double total = cost.total();
    if (total <= 0.0 || seconds <= 0.0) return;
    const double scale = seconds / total;
    round_attr_.compute_seconds += scale * cost.compute;
    round_attr_.host_seconds += scale * cost.host;
    round_attr_.pcie_seconds += scale * cost.pcie;
    round_attr_.network_seconds += scale * cost.network;
    round_attr_.straggler_wait_seconds += scale * cost.stall;
  };

  const auto rollback = [&] { state.weights = worker.weights_start; };

  if (worker.fault.kind == FaultKind::kDropDelta) {
    charge_split(segment_seconds);
    rollback();
    record_event(index, core::ClusterEventKind::kDeltaDropped);
    return;
  }

  std::vector<double> dshared(shared_.size());
  for (std::size_t i = 0; i < shared_.size(); ++i) {
    dshared[i] = static_cast<double>(state.shared[i]) -
                 static_cast<double>(worker.pulled_shared[i]);
  }

  // Push-leg bytes accounting (and the raw fp64 baseline the precision
  // ablation's reduction gate divides by).
  const auto charge_wire = [&](std::size_t wire) {
    const std::size_t dense = dense_delta_wire_bytes(shared_.size());
    delta_bytes_on_wire_ += wire;
    delta_bytes_dense_ += dense;
    obs::metrics().counter("cluster.delta.wire_bytes").add(wire);
    obs::metrics().counter("cluster.delta.dense_bytes").add(dense);
  };

  if (config_.compress_deltas) {
    // The delta travels quantized; the master works with the decoded image,
    // so the invariant holds up to the fp16 quantization error of the delta
    // (DESIGN.md §16).  A transit flip lands in the quantized payload and
    // the FNV stream over the encoded image must still catch it.
    CompressedDelta encoded =
        encode_delta(dshared, DeltaCodecConfig{config_.delta_threshold, 256});
    charge_wire(encoded.wire_bytes());
    if (worker.fault.kind == FaultKind::kCorruptDelta) {
      const std::uint64_t sent = encoded.checksum;
      corrupt_compressed_in_transit(encoded);
      if (compressed_delta_checksum(encoded) != sent) {
        charge_split(segment_seconds);
        rollback();
        record_event(index, core::ClusterEventKind::kDeltaCorrupted);
        return;
      }
    }
    decode_delta(encoded, dshared);
  } else {
    charge_wire(dense_delta_wire_bytes(shared_.size()));
    if (worker.fault.kind == FaultKind::kCorruptDelta) {
      const std::uint64_t sent = delta_checksum(dshared);
      corrupt_in_transit(dshared);
      if (delta_checksum(dshared) != sent) {
        charge_split(segment_seconds);
        rollback();
        record_event(index, core::ClusterEventKind::kDeltaCorrupted);
        return;
      }
    }
  }

  // ---- Bounded-staleness rule: versions elapsed since this worker's pull,
  // against the (possibly adaptive) window.
  const int window = effective_staleness_window();
  double theta = 1.0;
  if (staleness > static_cast<std::uint64_t>(window)) {
    if (config_.staleness_policy == StalenessPolicy::kReject) {
      // The whole cycle was wasted: the master learned nothing from it.
      round_attr_.stale_overhead_seconds += segment_seconds;
      rollback();
      record_event(index, core::ClusterEventKind::kStaleRejected);
      return;
    }
    theta = core::cluster_staleness_damping(staleness, window);
    record_event(index, core::ClusterEventKind::kStaleDamped);
  }
  // A damped delta only delivered a θ fraction of its step: the damped-away
  // share of this segment is staleness overhead, the rest splits normally.
  round_attr_.stale_overhead_seconds += (1.0 - theta) * segment_seconds;
  charge_split(theta * segment_seconds);

  // ---- γ rescaled to live contributors; adaptive mode runs the Algorithm 4
  // line search per delta against the master's *current* state (the exact
  // optimum along the delta direction, so even a stale direction is a
  // monotone step before damping).
  const auto f = config_.formulation;
  const int live = std::max(1, live_workers());
  const double fallback_gamma = 1.0 / live;
  double gamma = fallback_gamma;
  if (config_.aggregation == AggregationMode::kFixed) {
    gamma = config_.fixed_gamma;
  } else if (config_.aggregation == AggregationMode::kAdaptive) {
    PrimalGammaTerms pterms;
    DualGammaTerms dterms;
    accumulate_gamma_terms(f, worker.core.shard.labels(),
                           worker.weights_start, state.weights, pterms,
                           dterms);
    double shared_sq = 0.0;
    double dshared_sq = 0.0;
    double shared_dot_dshared = 0.0;
    for (std::size_t i = 0; i < shared_.size(); ++i) {
      shared_sq += static_cast<double>(shared_[i]) * shared_[i];
      dshared_sq += dshared[i] * dshared[i];
      shared_dot_dshared += static_cast<double>(shared_[i]) * dshared[i];
    }
    const bool direction_is_noise =
        dshared_sq <= 1e-10 * std::max(1.0, shared_sq);
    if (direction_is_noise) {
      gamma = fallback_gamma;
    } else if (f == core::Formulation::kPrimal) {
      const auto labels = global_->labels();
      pterms.dw_sq = dshared_sq;
      for (std::size_t i = 0; i < shared_.size(); ++i) {
        pterms.y_minus_w_dot_dw +=
            (static_cast<double>(labels[i]) - shared_[i]) * dshared[i];
      }
      gamma = optimal_gamma_primal(
          pterms, static_cast<double>(global_problem_.num_examples()),
          config_.lambda, fallback_gamma);
    } else {
      dterms.dwbar_sq = dshared_sq;
      dterms.wbar_dot_dwbar = shared_dot_dshared;
      gamma = optimal_gamma_dual(
          dterms, static_cast<double>(global_problem_.num_examples()),
          config_.lambda, fallback_gamma);
    }
  }
  last_gamma_ = gamma;

  // ---- Apply: master shared vector and the worker's committed weights move
  // by the same γθ, so shared == A·(assembled weights) is preserved exactly
  // (the invariant is linear in the delta).
  const double step = gamma * theta;
  const double apply_begin_us =
      obs::trace_enabled() ? obs::trace_now_us() : 0.0;
  for (std::size_t i = 0; i < shared_.size(); ++i) {
    shared_[i] = static_cast<float>(shared_[i] + step * dshared[i]);
  }
  for (std::size_t j = 0; j < state.weights.size(); ++j) {
    const double start = worker.weights_start[j];
    const double delta = static_cast<double>(state.weights[j]) - start;
    state.weights[j] = static_cast<float>(start + step * delta);
  }
  ++version_;
  applied_updates_ += state.weights.size();
  obs::metrics().counter("cluster.async.applied").add();
  if (obs::trace_enabled()) {
    obs::trace_complete("async/apply", apply_begin_us,
                        obs::trace_now_us() - apply_begin_us,
                        kAsyncMasterTrack, static_cast<std::int64_t>(version_));
  }
}

core::EpochReport AsyncSolver::run_epoch() {
  const util::WallTimer timer;
  ++round_;
  obs::TraceSpan round_span("async/round", kAsyncMasterTrack, round_);
  obs::metrics().counter("cluster.async.rounds").add();
  const double round_start = now_;
  pushes_this_round_ = 0;
  applied_updates_ = 0;

  apply_membership(round_);

  // Round start: every idle computing worker begins a cycle.  Workers whose
  // previous cycle straddles the boundary keep flying — that is the point of
  // no-barrier rounds — and backoff workers keep their restart timers.
  for (int k = 0; k < config_.num_workers; ++k) {
    auto& worker = *workers_[k];
    if (worker.status == AsyncWorkerStatus::kComputing && !worker.busy &&
        !worker.restart_pending) {
      schedule_cycle(k);
    }
  }

  // Event loop: pop the earliest pending event (ties break by slot) until
  // the master has absorbed one push attempt per live member.  Every push —
  // applied, damped, rejected, dropped or corrupted — counts as absorbed, so
  // a round makes progress even under total delta loss.
  while (true) {
    const int live = live_workers();
    if (live == 0 || pushes_this_round_ >= static_cast<std::uint64_t>(live)) {
      break;
    }
    int next = -1;
    for (int k = 0; k < config_.num_workers; ++k) {
      const auto& worker = *workers_[k];
      if (!worker.busy && !worker.restart_pending) continue;
      if (next < 0 || worker.event_at < workers_[next]->event_at) {
        next = k;
      }
    }
    if (next < 0) break;  // no events pending: nothing can push this round
    auto& worker = *workers_[next];
    // Master-critical-path segment consumed by this event.  Segments
    // telescope over the round, so the attribution components sum to the
    // round's sim time exactly.
    const double previous_now = now_;
    now_ = std::max(now_, worker.event_at);
    const double segment = now_ - previous_now;
    if (worker.restart_pending) {
      // Time the master spent with this slot dark, waiting out a backoff.
      round_attr_.straggler_wait_seconds += segment;
      worker.restart_pending = false;
      worker.status = AsyncWorkerStatus::kComputing;
      record_event(next, core::ClusterEventKind::kRestart);
      schedule_cycle(next);
      continue;
    }
    complete_cycle(next, segment);
    if (worker.status == AsyncWorkerStatus::kComputing && !worker.busy &&
        !worker.restart_pending) {
      schedule_cycle(next);
    }
  }

  last_contributors_ = live_workers();
  obs::metrics().gauge("cluster.async.version").set(
      static_cast<double>(version_));

  const double round_sim = now_ - round_start;
  last_attr_ = round_attr_;
  attr_totals_ += round_attr_;
  ++attr_rounds_;
  obs::record_round_attribution(round_attr_, attr_totals_, round_sim,
                                attr_clock_seconds_, round_,
                                attribution_track(kAsyncMasterTrack));
  attr_clock_seconds_ += round_sim;
  round_attr_ = obs::RoundAttribution{};

  core::EpochReport report;
  report.coordinate_updates = applied_updates_;
  report.sim_seconds = round_sim;
  report.wall_seconds = timer.seconds();
  return report;
}

double AsyncSolver::duality_gap(util::ThreadPool* pool) const {
  const auto weights = global_weights();
  return global_problem_.duality_gap(config_.formulation, weights, shared_,
                                     pool);
}

void AsyncSolver::set_merge_every(int merge_every) {
  for (auto& worker : workers_) {
    worker->core.solver->set_merge_every(merge_every);
  }
}

double AsyncSolver::setup_sim_seconds() const {
  double slowest = 0.0;
  for (const auto& worker : workers_) {
    slowest = std::max(slowest, worker->core.solver->setup_sim_seconds());
  }
  return slowest;
}

std::vector<float> AsyncSolver::global_weights() const {
  std::vector<float> weights(
      global_problem_.num_coordinates(config_.formulation), 0.0F);
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    const auto& worker = *workers_[k];
    // A busy worker's solver state is mid-cycle (schedule-time numerics run
    // the local epochs eagerly); its committed weights — the ones the
    // master's shared vector reflects — are the snapshot taken at its pull.
    const auto& local = worker.busy ? worker.weights_start
                                    : worker.core.solver->state().weights;
    const auto& owned = partition_.owned[k];
    for (std::size_t j = 0; j < owned.size(); ++j) {
      weights[owned[j]] = local[j];
    }
  }
  return weights;
}

core::SavedModel AsyncSolver::checkpoint() {
  // Rendezvous: drop in-flight cycles (their draws stay consumed) and
  // re-zero the simulated clock, shifting pending restart timers with it.
  // The post-rendezvous state is then numerically identical to what
  // restore() rebuilds — including the absolute event times the timeline
  // comparisons see, so resumed and straight-through runs cannot diverge on
  // floating-point tie-breaks.
  for (auto& worker : workers_) {
    discard_in_flight(*worker);
    if (worker->restart_pending) worker->event_at -= now_;
  }
  now_ = 0.0;

  core::SavedModel saved;
  saved.formulation = config_.formulation;
  saved.lambda = config_.lambda;
  saved.epoch = static_cast<std::uint32_t>(round_);
  saved.weights = global_weights();
  saved.shared = shared_;
  return saved;
}

AsyncCheckpointState AsyncSolver::checkpoint_state() const {
  AsyncCheckpointState state;
  state.round = static_cast<std::uint64_t>(round_);
  state.version = version_;
  state.seed = config_.seed;
  state.workers.reserve(workers_.size());
  for (const auto& worker : workers_) {
    AsyncCheckpointState::WorkerState ws;
    ws.draws_consumed = worker->draws_consumed;
    ws.status = static_cast<std::uint32_t>(worker->status);
    ws.crash_count = static_cast<std::uint32_t>(worker->crash_count);
    ws.restart_at = worker->restart_pending ? worker->event_at : 0.0;
    state.workers.push_back(ws);
  }
  return state;
}

void AsyncSolver::write_checkpoint_file(const std::string& path) {
  core::write_model_file(path, checkpoint());
  write_async_state_file(async_state_path(path), checkpoint_state());
}

void AsyncSolver::restore(const core::SavedModel& saved,
                          const AsyncCheckpointState& state) {
  if (round_ != 0) {
    throw std::logic_error(
        "AsyncSolver::restore: must be called on a fresh solver (rounds "
        "have already run)");
  }
  if (saved.formulation != config_.formulation) {
    throw std::invalid_argument(
        "AsyncSolver::restore: checkpoint formulation mismatch");
  }
  if (saved.weights.size() !=
          static_cast<std::size_t>(
              global_problem_.num_coordinates(config_.formulation)) ||
      saved.shared.size() != shared_.size()) {
    throw std::invalid_argument(
        "AsyncSolver::restore: checkpoint dimensions do not match the "
        "dataset/partition");
  }
  if (saved.lambda != config_.lambda) {
    throw std::invalid_argument(
        "AsyncSolver::restore: checkpoint lambda " +
        std::to_string(saved.lambda) + " != configured " +
        std::to_string(config_.lambda));
  }
  if (state.workers.size() != workers_.size()) {
    throw std::invalid_argument(
        "AsyncSolver::restore: sidecar worker count " +
        std::to_string(state.workers.size()) + " != configured " +
        std::to_string(workers_.size()));
  }
  if (state.seed != config_.seed) {
    throw std::invalid_argument(
        "AsyncSolver::restore: sidecar seed mismatch (the partition and "
        "fault schedule would not replay)");
  }
  if (static_cast<std::uint64_t>(saved.epoch) != state.round) {
    throw std::invalid_argument(
        "AsyncSolver::restore: model epoch " + std::to_string(saved.epoch) +
        " != sidecar round " + std::to_string(state.round) +
        " (mismatched checkpoint pair)");
  }

  shared_.assign(saved.shared.begin(), saved.shared.end());
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    auto& worker = *workers_[k];
    const auto& ws = state.workers[k];
    auto& solver_state = worker.core.solver->mutable_state();
    const auto& owned = partition_.owned[k];
    for (std::size_t j = 0; j < owned.size(); ++j) {
      solver_state.weights[j] = saved.weights[owned[j]];
    }
    solver_state.shared.assign(shared_.begin(), shared_.end());
    worker.weights_start = solver_state.weights;
    worker.core.solver->skip_epoch_randomness(
        static_cast<int>(ws.draws_consumed));
    worker.draws_consumed = ws.draws_consumed;
    worker.status = static_cast<AsyncWorkerStatus>(ws.status);
    worker.crash_count = static_cast<int>(ws.crash_count);
    worker.busy = false;
    worker.restart_pending = worker.status == AsyncWorkerStatus::kBackoff;
    worker.event_at = ws.restart_at;
    worker.fault_round = -1;
  }
  round_ = static_cast<int>(state.round);
  version_ = state.version;
  now_ = 0.0;
}

void AsyncSolver::restore_files(const std::string& path) {
  restore(core::read_model_file(path),
          read_async_state_file(async_state_path(path)));
}

core::ConvergenceTrace run_async(AsyncSolver& solver,
                                 const core::RunOptions& options,
                                 const CheckpointConfig& ckpt) {
  return run_cluster_loop(solver, options, ckpt, kAsyncMasterTrack);
}

}  // namespace tpa::cluster
