// Data partitioning for distributed SCD (paper Section IV.A).
//
// The training matrix is distributed either by feature (columns; primal
// form) or by example (rows; dual form).  A Partition assigns every global
// coordinate to exactly one worker; shard builders then materialise each
// worker's local matrix.  A shard keeps the *full* complementary dimension
// (a feature shard holds all N rows; an example shard keeps global column
// ids), because the shared vector is global.
//
// Shards inherit a proportionally scaled PaperScale so that the timing
// models charge each worker 1/K of the full-size dataset's work.
#pragma once

#include <span>
#include <vector>

#include "core/formulation.hpp"
#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace tpa::cluster {

using data::Index;

struct Partition {
  /// owned[k] = sorted global coordinate ids assigned to worker k.
  std::vector<std::vector<Index>> owned;

  int num_workers() const noexcept { return static_cast<int>(owned.size()); }

  /// Uniformly random assignment ("randomly distribute the rows", Sect. V.B).
  static Partition random(Index num_coordinates, int workers, util::Rng& rng);

  /// Random assignment with prescribed per-worker sizes (the placement
  /// optimizer's non-uniform splits).  Draws the same single permutation as
  /// random() and deals it round-robin, skipping workers that have reached
  /// their quota — so when `sizes` equals the uniform split this reproduces
  /// random() bit-for-bit (round-robin never overflows a uniform quota).
  /// Requires every size >= 1 (workers must own coordinates) and
  /// sum(sizes) == num_coordinates; throws std::invalid_argument otherwise.
  static Partition random_weighted(Index num_coordinates,
                                   std::span<const Index> sizes,
                                   util::Rng& rng);

  /// Contiguous ranges with prescribed sizes (deterministic; tests and
  /// non-uniform fixtures).  Same size validation as random_weighted.
  static Partition contiguous_sizes(Index num_coordinates,
                                    std::span<const Index> sizes);

  /// Contiguous equal-size ranges (deterministic; used in tests).
  static Partition contiguous(Index num_coordinates, int workers);

  /// Per-worker owned counts, in worker order.
  std::vector<Index> sizes() const;

  /// True iff every coordinate in [0, n) appears exactly once.
  bool covers(Index num_coordinates) const;
};

/// Worker k's local matrix for the primal form: all rows, columns `cols`
/// re-indexed to local ids 0..|cols|-1.  Labels are replicated (every worker
/// needs y for the residual).
data::Dataset make_feature_shard(const data::Dataset& global,
                                 std::span<const Index> cols);

/// Worker k's local matrix for the dual form: rows `rows`, full column
/// space.  Labels are the local examples' labels.
data::Dataset make_example_shard(const data::Dataset& global,
                                 std::span<const Index> rows);

/// Builds the shard appropriate for `f` from the partition's k-th piece.
data::Dataset make_shard(const data::Dataset& global, core::Formulation f,
                         std::span<const Index> coordinates);

}  // namespace tpa::cluster
