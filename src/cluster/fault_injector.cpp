#include "cluster/fault_injector.hpp"

#include "util/rng.hpp"

namespace tpa::cluster {
namespace {

/// Stateless uniform in [0, 1) keyed by (seed, epoch, worker, salt): three
/// splitmix64 rounds over the mixed key, then the 53-bit mantissa trick.
double keyed_uniform(std::uint64_t seed, int epoch, int worker,
                     std::uint64_t salt) {
  std::uint64_t state = seed ^ (static_cast<std::uint64_t>(epoch) * 0x9e3779b97f4a7c15ULL) ^
                        (static_cast<std::uint64_t>(worker) * 0xbf58476d1ce4e5b9ULL) ^ salt;
  util::splitmix64_next(state);
  util::splitmix64_next(state);
  const std::uint64_t bits = util::splitmix64_next(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

int severity(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return 4;
    case FaultKind::kStall:
      return 3;
    case FaultKind::kCorruptDelta:
      return 2;
    case FaultKind::kDropDelta:
      return 1;
    case FaultKind::kNone:
      break;
  }
  return 0;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDropDelta:
      return "drop";
    case FaultKind::kCorruptDelta:
      return "corrupt";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultConfig config) : config_(std::move(config)) {}

FaultEvent FaultInjector::query(int epoch, int worker) const {
  FaultEvent hit;
  hit.epoch = epoch;
  hit.worker = worker;

  // Scripted events first: exact epoch match, or any epoch at/after a
  // permanent stall's start.
  for (const auto& event : config_.scripted) {
    if (event.worker != worker) continue;
    const bool applies = event.permanent && event.kind == FaultKind::kStall
                             ? epoch >= event.epoch
                             : epoch == event.epoch;
    if (!applies) continue;
    if (severity(event.kind) > severity(hit.kind)) {
      hit.kind = event.kind;
      hit.stall_factor = event.stall_factor;
      hit.permanent = event.permanent;
    }
  }
  if (hit.kind != FaultKind::kNone) return hit;

  // Rate-based draws, one independent coin per kind so the marginal rates
  // match the config; a multi-hit resolves to the most severe kind.
  struct Draw {
    FaultKind kind;
    double rate;
    std::uint64_t salt;
  };
  const Draw draws[] = {
      {FaultKind::kCrash, config_.crash_rate, 0xc4a54ULL},
      {FaultKind::kStall, config_.stall_rate, 0x57a11ULL},
      {FaultKind::kCorruptDelta, config_.corrupt_rate, 0xc0447ULL},
      {FaultKind::kDropDelta, config_.drop_rate, 0xd40bbULL},
  };
  for (const auto& draw : draws) {
    if (draw.rate <= 0.0) continue;
    if (keyed_uniform(config_.seed, epoch, worker, draw.salt) < draw.rate &&
        severity(draw.kind) > severity(hit.kind)) {
      hit.kind = draw.kind;
      hit.stall_factor = config_.stall_factor;
    }
  }
  return hit;
}

}  // namespace tpa::cluster
