#include "gpusim/device_memory.hpp"

namespace tpa::gpusim {

OutOfDeviceMemory::OutOfDeviceMemory(const std::string& device,
                                     std::size_t requested,
                                     std::size_t available)
    : std::runtime_error("device " + device + ": allocation of " +
                         std::to_string(requested) + " bytes exceeds " +
                         std::to_string(available) + " bytes available") {}

void DeviceMemory::allocate(std::size_t bytes) {
  if (bytes > available()) {
    throw OutOfDeviceMemory(device_name_, bytes, available());
  }
  allocated_ += bytes;
}

void DeviceMemory::release(std::size_t bytes) {
  allocated_ -= bytes <= allocated_ ? bytes : allocated_;
}

double DeviceMemory::upload_seconds(std::size_t bytes, const PcieLink& link,
                                    bool pinned) const {
  return link.transfer_seconds(bytes, pinned);
}

double DeviceMemory::download_seconds(std::size_t bytes, const PcieLink& link,
                                      bool pinned) const {
  return link.transfer_seconds(bytes, pinned);
}

}  // namespace tpa::gpusim
