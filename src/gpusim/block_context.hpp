// Intra-thread-block execution semantics of TPA-SCD (Algorithm 2).
//
// Inside one thread block the paper distributes the partial inner product
// across `nthreads` threads in a strided loop, caches the per-thread partial
// sums in shared memory, and combines them with a log2(nthreads) tree
// reduction under __syncthreads() barriers.  All of this happens in 32-bit
// floats, so the *summation order* differs from a sequential CPU loop.  The
// BlockContext reproduces that exact order, which is what the gpusim unit
// tests verify against a double-precision reference.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace tpa::gpusim {

class BlockContext {
 public:
  /// `num_threads` must be a power of two (warp-multiple in practice).
  /// Throws std::invalid_argument otherwise.
  explicit BlockContext(int num_threads);

  int num_threads() const noexcept { return num_threads_; }

  /// Emulates the strided accumulation + shared-memory tree reduction:
  /// thread u sums term(i) for i = u, u+T, u+2T, ... < count into a float,
  /// then the partial sums are pairwise-reduced as on the GPU.
  /// Returns the float result (promoted to double for the caller).
  double strided_reduce(std::size_t count,
                        const std::function<float(std::size_t)>& term);

  /// Emulates the all-thread strided scatter loop that writes the shared
  /// vector update: calls write(i) for i = u, u+T, ... for every thread u.
  /// The visiting order is the interleaved per-thread order of the GPU loop,
  /// which matters only for observability (all writes are atomic adds).
  void strided_for_each(std::size_t count,
                        const std::function<void(std::size_t)>& write);

 private:
  int num_threads_;
  std::vector<float> shared_cache_;  // models the block's shared memory
};

}  // namespace tpa::gpusim
