// GPU device models.
//
// The paper runs TPA-SCD on an NVIDIA Quadro M4000 and a GeForce GTX Titan X
// (both Maxwell).  No GPU is available in this environment, so the library
// ships a *functional simulator*: convergence-relevant semantics (block
// asynchrony, intra-block float reduction order, atomic write-back) are
// executed exactly, while runtime is predicted by an analytic model
// parameterised by the published specifications below.  DESIGN.md §2/§5
// documents the substitution and calibration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tpa::gpusim {

struct DeviceSpec {
  std::string name;
  int num_sms = 0;                  // streaming multiprocessors
  int max_blocks_per_sm = 0;        // resident thread blocks per SM
  int threads_per_block = 0;        // warp-multiple block size
  double fp32_tflops = 0.0;         // peak single-precision throughput
  double mem_bandwidth_gbps = 0.0;  // GB/s peak global-memory bandwidth
  double mem_efficiency = 0.0;      // achieved fraction for sparse streams
  std::size_t l2_capacity_bytes = 0;  // on-chip L2 (absorbs shared-vector
                                      // traffic when the vector fits)
  double l2_bandwidth_gbps = 0.0;
  std::size_t mem_capacity_bytes = 0;
  double kernel_launch_overhead_s = 0.0;  // per kernel launch
  double clock_ghz = 1.0;                 // SM clock
  /// Per-thread-block execution cost that does not overlap with streaming:
  /// the shared-memory tree reduction, its barriers and the block prologue,
  /// expressed in SM cycles.  Blocks issue across SMs in parallel, so the
  /// epoch-level cost is  num_blocks * cycles / (num_sms * clock)  — a
  /// throughput term, not a latency term (resident blocks hide each other's
  /// barriers).
  double block_sync_cycles = 300.0;

  /// Number of thread blocks that can be resident at once (occupancy limit).
  int resident_blocks() const noexcept {
    return num_sms * max_blocks_per_sm;
  }

  /// Effective asynchrony window for coordinate updates: the expected number
  /// of updates whose atomic write-back has not yet landed when a block
  /// reads the shared vector.  This is far smaller than resident_blocks():
  /// resident blocks spend most of their lifetime stalled on memory while
  /// their predecessors' atomics drain continuously, so a block's read
  /// misses only the writes of blocks actively executing alongside it —
  /// O(SM count), not O(occupancy).  Modelled as 2 blocks per SM.
  int async_staleness() const noexcept { return 2 * num_sms; }

  /// True if a dataset of `bytes` fits in device memory (the paper's
  /// motivation for distributing: webspam fits in 8 GB, criteo does not).
  bool fits(std::size_t bytes) const noexcept {
    return bytes <= mem_capacity_bytes;
  }

  /// NVIDIA Quadro M4000: 13 SMs, 2.57 TFLOPS, 192 GB/s, 8 GB.
  static DeviceSpec quadro_m4000();

  /// NVIDIA GeForce GTX Titan X (Maxwell): 24 SMs, 6.1 TFLOPS, 336 GB/s,
  /// 12 GB.
  static DeviceSpec titan_x();
};

/// PCIe gen3 x16 host<->device link.  The paper pins host memory to reach
/// full throughput; pageable transfers are modelled slower.
struct PcieLink {
  double pinned_bandwidth_gbps = 11.0;
  double pageable_bandwidth_gbps = 6.0;
  double latency_s = 10e-6;

  double transfer_seconds(std::size_t bytes, bool pinned) const noexcept;
};

}  // namespace tpa::gpusim
