#include "gpusim/timing_model.hpp"

#include <algorithm>

namespace tpa::gpusim {

std::uint64_t GpuTimingModel::matrix_bytes(const EpochWorkload& w) const
    noexcept {
  // The matrix is streamed twice per epoch — once for the inner products,
  // once for the write-back — at 4 B index + 4 B value per entry per pass.
  return w.nnz * 16;
}

std::uint64_t GpuTimingModel::shared_vector_bytes(const EpochWorkload& w)
    const noexcept {
  // Per entry: one element gather in the read pass and a read+write RMW in
  // the write pass — three element-width transfers.  4 B elements give the
  // historical 12 B/entry; fp16 storage halves it to 6.
  return w.nnz * 3 * w.shared_value_bytes;
}

std::uint64_t GpuTimingModel::epoch_bytes(const EpochWorkload& w) const
    noexcept {
  return matrix_bytes(w) + shared_vector_bytes(w);
}

std::uint64_t GpuTimingModel::epoch_flops(const EpochWorkload& w) const
    noexcept {
  // One FMA per entry in the inner product, one multiply-add in write-back.
  return w.nnz * 4;
}

double GpuTimingModel::epoch_seconds(const EpochWorkload& w) const noexcept {
  const double dram_bw =
      spec_.mem_bandwidth_gbps * 1e9 * spec_.mem_efficiency;
  // Shared-vector traffic is absorbed by L2 when the vector fits on chip.
  // This asymmetry is what makes the M4000 faster on the primal (w = 1 MB
  // fits its 2 MB L2, w̄ = 2.7 MB does not) while the Titan X's 3 MB L2
  // holds both — the reversal visible between the paper's Figs. 1b and 2b.
  const bool shared_fits_l2 =
      w.shared_dim * w.shared_value_bytes <= spec_.l2_capacity_bytes;
  const double shared_bw =
      shared_fits_l2 ? spec_.l2_bandwidth_gbps * 1e9 : dram_bw;
  const double mem_time =
      static_cast<double>(matrix_bytes(w)) / dram_bw +
      static_cast<double>(shared_vector_bytes(w)) / shared_bw;
  const double flop_time =
      static_cast<double>(epoch_flops(w)) / (spec_.fp32_tflops * 1e12);
  const double overhead =
      static_cast<double>(w.num_coordinates) * spec_.block_sync_cycles /
          (spec_.num_sms * spec_.clock_ghz * 1e9) +
      spec_.kernel_launch_overhead_s;
  return std::max(mem_time, flop_time) + overhead;
}

}  // namespace tpa::gpusim
