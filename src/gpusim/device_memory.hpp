// Device-memory accounting and host<->device transfer simulation.
//
// The functional simulator keeps "device" data in host RAM, but allocation
// sizes are charged against the device's capacity (so that, e.g., loading the
// paper-scale criteo sample onto a single 12 GB Titan X fails exactly as it
// would in reality) and every transfer accrues simulated PCIe time.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "gpusim/device.hpp"

namespace tpa::gpusim {

/// Thrown when an allocation exceeds the device's remaining capacity.
class OutOfDeviceMemory : public std::runtime_error {
 public:
  OutOfDeviceMemory(const std::string& device, std::size_t requested,
                    std::size_t available);
};

class DeviceMemory {
 public:
  explicit DeviceMemory(const DeviceSpec& spec)
      : device_name_(spec.name), capacity_(spec.mem_capacity_bytes) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t allocated() const noexcept { return allocated_; }
  std::size_t available() const noexcept { return capacity_ - allocated_; }

  /// Charges `bytes` against the capacity; throws OutOfDeviceMemory when the
  /// allocation does not fit.
  void allocate(std::size_t bytes);

  /// Releases `bytes` (must not exceed the allocated amount).
  void release(std::size_t bytes);

  /// Simulated host-to-device copy time; also verifies the bytes are within
  /// an existing allocation budget (they must have been allocate()d).
  double upload_seconds(std::size_t bytes, const PcieLink& link,
                        bool pinned = true) const;

  /// Simulated device-to-host copy time.
  double download_seconds(std::size_t bytes, const PcieLink& link,
                          bool pinned = true) const;

 private:
  std::string device_name_;
  std::size_t capacity_;
  std::size_t allocated_ = 0;
};

}  // namespace tpa::gpusim
