#include "gpusim/block_context.hpp"

#include <stdexcept>

namespace tpa::gpusim {

BlockContext::BlockContext(int num_threads) : num_threads_(num_threads) {
  if (num_threads <= 0 || (num_threads & (num_threads - 1)) != 0) {
    throw std::invalid_argument(
        "BlockContext: num_threads must be a positive power of two");
  }
  shared_cache_.resize(static_cast<std::size_t>(num_threads), 0.0F);
}

double BlockContext::strided_reduce(
    std::size_t count, const std::function<float(std::size_t)>& term) {
  const auto threads = static_cast<std::size_t>(num_threads_);
  // Phase 1: per-thread strided partial sums (float accumulation, exactly as
  // the dpu register accumulates on the GPU).
  for (std::size_t u = 0; u < threads; ++u) {
    float partial = 0.0F;
    for (std::size_t i = u; i < count; i += threads) {
      partial += term(i);
    }
    shared_cache_[u] = partial;
  }
  // Phase 2: tree reduction with implicit __syncthreads() between levels.
  // Note Algorithm 2 in the paper prints `cache[u] = cache[u+v]`; the
  // intended (and implemented) operation is the accumulate `+=`.
  for (std::size_t v = threads / 2; v != 0; v /= 2) {
    for (std::size_t u = 0; u < v; ++u) {
      shared_cache_[u] += shared_cache_[u + v];
    }
  }
  return static_cast<double>(shared_cache_[0]);
}

void BlockContext::strided_for_each(
    std::size_t count, const std::function<void(std::size_t)>& write) {
  const auto threads = static_cast<std::size_t>(num_threads_);
  for (std::size_t u = 0; u < threads; ++u) {
    for (std::size_t i = u; i < count; i += threads) {
      write(i);
    }
  }
}

}  // namespace tpa::gpusim
