// Analytic runtime model for one TPA-SCD epoch on a simulated device.
//
// An epoch streams the whole sparse matrix once for the inner products and
// once for the atomic write-back, touching the shared vector on both passes;
// on Maxwell-class GPUs this workload is memory-bandwidth-bound, with
// per-block scheduling and kernel-launch overheads becoming visible when
// coordinates are many and rows/columns are short.  The model is
//
//   t = max(bytes_moved / (BW * eta),  flops / peak_flops)
//       + num_blocks * block_overhead + launch_overhead
//
// with eta calibrated once per device against the paper's single-GPU
// speed-ups and then reused unchanged for the distributed experiments
// (DESIGN.md §5).
#pragma once

#include <cstdint>

#include "gpusim/device.hpp"

namespace tpa::gpusim {

struct EpochWorkload {
  std::uint64_t nnz = 0;          // stored entries visited this epoch
  std::uint64_t num_coordinates = 0;  // thread blocks launched
  std::uint64_t shared_dim = 0;   // length of the shared vector
  // Stored bytes per shared-vector element: 4 (fp32, historical default) or
  // 2 (fp16 storage mode, DESIGN.md §16).  Halves the gather/RMW traffic
  // and doubles the dimension that still fits in L2.
  std::uint32_t shared_value_bytes = 4;
};

class GpuTimingModel {
 public:
  explicit GpuTimingModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const noexcept { return spec_; }

  /// DRAM bytes for streaming the sparse matrix (both passes).
  std::uint64_t matrix_bytes(const EpochWorkload& w) const noexcept;

  /// Bytes of shared-vector traffic (gathers + atomic RMWs); served from L2
  /// when the shared vector fits on chip.
  std::uint64_t shared_vector_bytes(const EpochWorkload& w) const noexcept;

  /// Total bytes moved by one epoch.
  std::uint64_t epoch_bytes(const EpochWorkload& w) const noexcept;

  /// FP32 operations of one epoch (multiply-add on each entry, twice).
  std::uint64_t epoch_flops(const EpochWorkload& w) const noexcept;

  /// Simulated seconds for one full epoch.
  double epoch_seconds(const EpochWorkload& w) const noexcept;

 private:
  DeviceSpec spec_;
};

}  // namespace tpa::gpusim
