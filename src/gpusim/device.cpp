#include "gpusim/device.hpp"

namespace tpa::gpusim {

DeviceSpec DeviceSpec::quadro_m4000() {
  DeviceSpec spec;
  spec.name = "Quadro M4000";
  spec.num_sms = 13;
  spec.max_blocks_per_sm = 16;
  spec.threads_per_block = 128;
  spec.fp32_tflops = 2.57;
  spec.mem_bandwidth_gbps = 192.0;
  // mem_efficiency and block_sync_cycles are calibrated once so the
  // single-GPU webspam speed-ups over sequential SCD land in the paper's
  // band (primal 14x / dual 10x, Figs. 1b / 2b); see DESIGN.md §5.
  spec.mem_efficiency = 0.60;
  spec.l2_capacity_bytes = 2ULL << 20;
  spec.l2_bandwidth_gbps = 500.0;
  spec.mem_capacity_bytes = 8ULL << 30;
  spec.kernel_launch_overhead_s = 8e-6;
  spec.clock_ghz = 0.78;
  spec.block_sync_cycles = 300.0;
  return spec;
}

DeviceSpec DeviceSpec::titan_x() {
  DeviceSpec spec;
  spec.name = "GTX Titan X";
  spec.num_sms = 24;
  spec.max_blocks_per_sm = 16;
  spec.threads_per_block = 128;
  spec.fp32_tflops = 6.1;
  spec.mem_bandwidth_gbps = 336.0;
  // Calibrated to the paper's 25x (primal) / 35x (dual) single-GPU band.
  spec.mem_efficiency = 0.80;
  spec.l2_capacity_bytes = 3ULL << 20;
  spec.l2_bandwidth_gbps = 1000.0;
  spec.mem_capacity_bytes = 12ULL << 30;
  spec.kernel_launch_overhead_s = 8e-6;
  spec.clock_ghz = 1.0;
  spec.block_sync_cycles = 300.0;
  return spec;
}

double PcieLink::transfer_seconds(std::size_t bytes, bool pinned) const
    noexcept {
  const double bandwidth =
      (pinned ? pinned_bandwidth_gbps : pageable_bandwidth_gbps) * 1e9;
  return latency_s + static_cast<double>(bytes) / bandwidth;
}

}  // namespace tpa::gpusim
