#include "serve/request_batcher.hpp"

#include <memory>
#include <utility>

namespace tpa::serve {

const char* admission_name(Admission a) noexcept {
  switch (a) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kQueueFull:
      return "queue-full";
    case Admission::kNoModel:
      return "no-model";
    case Admission::kShutdown:
      return "shutdown";
  }
  return "?";
}

RequestBatcher::RequestBatcher(BatcherConfig config, util::ThreadPool& pool,
                               BatchFn on_batch)
    : config_(config), pool_(pool), on_batch_(std::move(on_batch)) {
  if (config_.max_batch_size == 0) config_.max_batch_size = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.max_inflight_batches == 0) {
    config_.max_inflight_batches = 2 * pool_.size();
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

RequestBatcher::~RequestBatcher() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_event_.notify_all();
  dispatcher_.join();
  // The dispatcher flushed the queue before exiting; wait for the last
  // batches to finish executing so on_batch_ never outlives this object.
  drain();
}

SubmitResult RequestBatcher::submit(sparse::SparseVectorView row) {
  SubmitResult result;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      result.status = Admission::kShutdown;
      return result;
    }
    if (queue_.size() >= config_.queue_capacity) {
      result.status = Admission::kQueueFull;
      return result;
    }
    Request request;
    request.row = row;
    request.enqueued = std::chrono::steady_clock::now();
    result.prediction = request.result.get_future();
    result.status = Admission::kAccepted;
    queue_.push_back(std::move(request));
  }
  queue_event_.notify_one();
  return result;
}

void RequestBatcher::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  inflight_event_.wait(
      lock, [this] { return queue_.empty() && inflight_batches_ == 0; });
}

std::size_t RequestBatcher::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void RequestBatcher::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    queue_event_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Wait out the coalescing window: until the batch fills or the oldest
    // request's deadline passes.  Shutdown flushes immediately.
    const auto deadline = queue_.front().enqueued + config_.max_wait;
    while (!stopping_ && queue_.size() < config_.max_batch_size) {
      if (queue_event_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    // Backpressure: hold the batch until an execution slot frees up, letting
    // the queue fill and admission control start shedding.
    inflight_event_.wait(lock, [this] {
      return inflight_batches_ < config_.max_inflight_batches;
    });
    auto batch = std::make_shared<std::vector<Request>>();
    const std::size_t take =
        std::min(queue_.size(), config_.max_batch_size);
    batch->reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch->push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++inflight_batches_;
    lock.unlock();
    pool_.submit([this, batch] {
      on_batch_(*batch);
      // Notify under the lock: drain() may destroy this batcher the moment
      // the predicate holds, so the cv must not be touched after unlock.
      const std::lock_guard<std::mutex> inner(mutex_);
      --inflight_batches_;
      inflight_event_.notify_all();
    });
    lock.lock();
  }
}

}  // namespace tpa::serve
