#include "serve/scorer.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace tpa::serve {
namespace {

using sparse::Index;
using sparse::Value;

/// Contiguous-index rows read beta as a dense subrange: no gather, and the
/// compiler emits packed mul/add over both arrays.
double score_dense_span(std::span<const Value> values,
                        std::span<const float> beta_slice) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t k = 0;
  const std::size_t n4 = values.size() & ~std::size_t{3};
  for (; k < n4; k += 4) {
    acc0 += static_cast<double>(values[k]) * beta_slice[k];
    acc1 += static_cast<double>(values[k + 1]) * beta_slice[k + 1];
    acc2 += static_cast<double>(values[k + 2]) * beta_slice[k + 2];
    acc3 += static_cast<double>(values[k + 3]) * beta_slice[k + 3];
  }
  for (; k < values.size(); ++k) {
    acc0 += static_cast<double>(values[k]) * beta_slice[k];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

double score_gather(std::span<const Index> indices,
                    std::span<const Value> values,
                    std::span<const float> beta) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t k = 0;
  const std::size_t n4 = indices.size() & ~std::size_t{3};
  for (; k < n4; k += 4) {
    acc0 += static_cast<double>(values[k]) * beta[indices[k]];
    acc1 += static_cast<double>(values[k + 1]) * beta[indices[k + 1]];
    acc2 += static_cast<double>(values[k + 2]) * beta[indices[k + 2]];
    acc3 += static_cast<double>(values[k + 3]) * beta[indices[k + 3]];
  }
  for (; k < indices.size(); ++k) {
    acc0 += static_cast<double>(values[k]) * beta[indices[k]];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

}  // namespace

double score_row(const sparse::SparseVectorView& row,
                 std::span<const float> beta) {
  auto indices = row.indices;
  auto values = row.values;
  if (indices.empty() || beta.empty()) return 0.0;
  // Clip to the model width: column indices are strictly increasing within a
  // row, so entries past the first out-of-range index can all be dropped.
  if (static_cast<std::size_t>(indices.back()) >= beta.size()) {
    std::size_t in_range = 0;
    while (in_range < indices.size() &&
           static_cast<std::size_t>(indices[in_range]) < beta.size()) {
      ++in_range;
    }
    indices = indices.first(in_range);
    values = values.first(in_range);
    if (indices.empty()) return 0.0;
  }
  const std::size_t width =
      static_cast<std::size_t>(indices.back()) -
      static_cast<std::size_t>(indices.front()) + 1;
  if (width == indices.size()) {
    return score_dense_span(
        values, beta.subspan(static_cast<std::size_t>(indices.front()),
                             indices.size()));
  }
  return score_gather(indices, values, beta);
}

void score_rows(const sparse::CsrMatrix& matrix, Index begin, Index end,
                std::span<const float> beta, std::span<float> out) {
  if (begin > end || end > matrix.rows()) {
    throw std::out_of_range("score_rows: bad row range");
  }
  if (out.size() < static_cast<std::size_t>(end - begin)) {
    throw std::invalid_argument("score_rows: output span too small");
  }
  for (Index r = begin; r < end; ++r) {
    out[static_cast<std::size_t>(r - begin)] =
        static_cast<float>(score_row(matrix.row(r), beta));
  }
}

std::vector<float> score_matrix(util::ThreadPool& pool,
                                const sparse::CsrMatrix& matrix,
                                const ServableModel& model) {
  std::vector<float> out(static_cast<std::size_t>(matrix.rows()));
  score_matrix(pool, matrix, model, out);
  return out;
}

void score_matrix(util::ThreadPool& pool, const sparse::CsrMatrix& matrix,
                  const ServableModel& model, std::span<float> out) {
  if (out.size() != static_cast<std::size_t>(matrix.rows())) {
    throw std::invalid_argument("score_matrix: output span size mismatch");
  }
  pool.parallel_for_chunks(
      out.size(), [&](std::size_t begin, std::size_t end) {
        score_rows(matrix, static_cast<Index>(begin), static_cast<Index>(end),
                   model.beta, out.subspan(begin));
      });
}

}  // namespace tpa::serve
