// Serving metrics: lock-free counters plus a fixed-bucket latency histogram.
//
// Every recording path is a relaxed atomic increment, so request threads and
// batch workers never contend on a lock.  Quantiles (p50/p95/p99) come from a
// snapshot walk over the power-of-two microsecond buckets; a reported value
// is the upper edge of the bucket holding the target rank, i.e. exact to
// within one 2x bucket.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "util/timer.hpp"

namespace tpa::serve {

/// Histogram over [1µs, ~4295s): bucket b counts latencies in
/// [2^b, 2^(b+1)) microseconds; under/overflows land in the edge buckets.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(double seconds) noexcept;

  std::uint64_t total_count() const noexcept;

  /// Latency (µs) at quantile q in [0, 1]: upper edge of the bucket that
  /// contains the rank.  Returns 0 when empty.
  double quantile_us(double q) const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Point-in-time copy of every serving counter, with derived rates.
struct StatsSnapshot {
  std::uint64_t accepted = 0;    // requests admitted to the queue
  std::uint64_t rejected = 0;    // requests shed (queue full / no model)
  std::uint64_t completed = 0;   // predictions delivered
  std::uint64_t batches = 0;     // batches executed
  std::uint64_t reloads = 0;     // model publications observed
  double wall_seconds = 0.0;     // since metrics construction / reset
  double throughput_rps = 0.0;   // completed / wall_seconds
  double mean_batch_size = 0.0;  // completed / batches
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;

  /// One-line human-readable rendering for logs and CLI output.
  std::string summary() const;
};

class ServingMetrics {
 public:
  void record_accept() noexcept {
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_reject() noexcept {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_reload() noexcept {
    reloads_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Records one executed batch of `size` completed predictions.
  void record_batch(std::size_t size) noexcept {
    batches_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(size, std::memory_order_relaxed);
  }
  /// Records one request's enqueue-to-completion latency.
  void record_latency(double seconds) noexcept { latency_.record(seconds); }

  std::uint64_t batches() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }

  StatsSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> reloads_{0};
  LatencyHistogram latency_;
  util::WallTimer clock_;
};

}  // namespace tpa::serve
