// Serving metrics: lock-free counters plus a fixed-bucket latency histogram
// (a microsecond-unit view over the shared obs::Histogram).
//
// Every recording path is a relaxed atomic increment, so request threads and
// batch workers never contend on a lock.  Quantiles (p50/p95/p99) come from a
// snapshot walk over the power-of-two microsecond buckets; a reported value
// is the *upper edge* of the 2x bucket holding the target rank — exact to
// within one bucket, so e.g. a reported p99 of 512µs means the true p99 lies
// in (256µs, 512µs].
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/histogram.hpp"
#include "util/timer.hpp"

namespace tpa::serve {

/// Histogram over [1µs, ~4295s): bucket b counts latencies in
/// [2^b, 2^(b+1)) microseconds; under/overflows land in the edge buckets.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = obs::Histogram::kBuckets;

  void record(double seconds) noexcept { histogram_.record(seconds * 1e6); }

  std::uint64_t total_count() const noexcept {
    return histogram_.total_count();
  }

  /// Latency (µs) at quantile q in [0, 1]: upper edge of the bucket that
  /// contains the rank (see obs::Histogram::quantile).  Returns 0 when
  /// empty; sub-µs samples report the bucket-0 edge (2µs); samples at or
  /// beyond 2^31µs report the overflow edge (2^32µs).
  double quantile_us(double q) const noexcept { return histogram_.quantile(q); }

  void reset() noexcept { histogram_.reset(); }

 private:
  obs::Histogram histogram_;
};

/// Point-in-time copy of every serving counter, with derived rates.  All
/// fields cover the same window — from ServingMetrics construction or its
/// most recent reset() to the moment of the snapshot — so throughput_rps is
/// always completed-in-window / wall-seconds-of-window.
struct StatsSnapshot {
  std::uint64_t accepted = 0;    // requests admitted to the queue
  std::uint64_t rejected = 0;    // requests shed (queue full / no model)
  std::uint64_t completed = 0;   // predictions delivered
  std::uint64_t batches = 0;     // batches executed
  std::uint64_t reloads = 0;     // model publications observed
  double wall_seconds = 0.0;     // window length (construction/reset → now)
  double throughput_rps = 0.0;   // completed / wall_seconds
  double mean_batch_size = 0.0;  // completed / batches
  // Bucket upper edges (see the quantile contract above).
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;

  /// One-line human-readable rendering for logs and CLI output.
  std::string summary() const;
};

class ServingMetrics {
 public:
  void record_accept() noexcept {
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_reject() noexcept {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_reload() noexcept {
    reloads_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Records one executed batch of `size` completed predictions.
  void record_batch(std::size_t size) noexcept {
    batches_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(size, std::memory_order_relaxed);
  }
  /// Records one request's enqueue-to-completion latency.
  void record_latency(double seconds) noexcept { latency_.record(seconds); }

  std::uint64_t batches() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }

  StatsSnapshot snapshot() const;

  /// Starts a fresh measurement window: zeroes every counter and the
  /// histogram, and restarts the wall clock — together, so post-reset
  /// snapshots derive rates from post-reset counts over post-reset time
  /// only.  Not atomic with respect to concurrent recorders: an event
  /// racing with the reset lands entirely in the old or the new window.
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> reloads_{0};
  LatencyHistogram latency_;
  util::WallTimer clock_;
};

}  // namespace tpa::serve
