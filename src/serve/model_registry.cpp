#include "serve/model_registry.hpp"

namespace tpa::serve {

std::uint64_t ModelRegistry::publish(const core::SavedModel& saved) {
  const std::uint64_t version =
      next_version_.fetch_add(1, std::memory_order_relaxed);
  auto model = std::make_shared<const ServableModel>(
      ServableModel::from_saved(saved, version));
  model_.store(std::move(model), std::memory_order_release);
  return version;
}

std::uint64_t ModelRegistry::publish_file(const std::string& path) {
  return publish(core::read_model_file(path));
}

}  // namespace tpa::serve
