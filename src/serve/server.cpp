#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/trace.hpp"
#include "serve/scorer.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace tpa::serve {

Server::Server(ServerConfig config)
    : config_(config), pool_(config.threads) {
  batcher_ = std::make_unique<RequestBatcher>(
      config_.batcher, pool_,
      [this](std::vector<Request>& batch) { execute_batch(batch); });
}

std::uint64_t Server::publish(const core::SavedModel& saved) {
  const auto version = registry_.publish(saved);
  metrics_.record_reload();
  TPA_LOG_INFO << "serve: published model v" << version;
  return version;
}

std::uint64_t Server::reload(const std::string& path) {
  // The span covers retries and backoff sleeps: the exported duration is the
  // full time serving ran on the stale model.
  obs::TraceSpan span("serve/reload");
  const int attempts = 1 + std::max(0, config_.reload_retries);
  // Jitter the backoff by ±50% so replicas that watched the same trainer
  // don't hammer the file in lockstep.  Wall-clock seeded: reload timing is
  // outside the deterministic simulation and should not share its streams.
  util::Rng jitter(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  for (int attempt = 1;; ++attempt) {
    try {
      const auto version = registry_.publish_file(path);
      metrics_.record_reload();
      TPA_LOG_INFO << "serve: reloaded " << path << " as model v" << version;
      return version;
    } catch (const std::exception& error) {
      if (attempt >= attempts) {
        TPA_LOG_ERROR << "serve: reload of " << path << " failed after "
                      << attempt << " attempt" << (attempt == 1 ? "" : "s")
                      << ", giving up: " << error.what();
        throw;
      }
      const auto sleep_ms =
          config_.reload_backoff_ms * jitter.uniform(0.5, 1.5);
      TPA_LOG_WARN << "serve: reload of " << path << " failed (attempt "
                   << attempt << "/" << attempts << "): " << error.what()
                   << "; retrying in " << sleep_ms << "ms";
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          sleep_ms));
    }
  }
}

SubmitResult Server::submit(sparse::SparseVectorView row) {
  if (registry_.current() == nullptr) {
    SubmitResult result;
    result.status = Admission::kNoModel;
    metrics_.record_reject();
    return result;
  }
  auto result = batcher_->submit(row);
  if (result.accepted()) {
    metrics_.record_accept();
  } else {
    metrics_.record_reject();
  }
  return result;
}

void Server::execute_batch(std::vector<Request>& batch) {
  obs::TraceSpan span("serve/batch", obs::kCurrentThread,
                      static_cast<std::int64_t>(batch.size()));
  // One model snapshot per batch: a publish() racing with this batch either
  // lands before (whole batch scores on the new weights) or after (batch
  // finishes on the old weights, freed with the last reference).
  const auto model = registry_.current();
  const auto done = std::chrono::steady_clock::now;
  for (auto& request : batch) {
    if (model == nullptr) {
      // Only reachable if a request was accepted before any publish — the
      // Server guards that, but fail loudly rather than fabricate a score.
      request.result.set_exception(std::make_exception_ptr(
          std::runtime_error("serve: no model published")));
      continue;
    }
    request.result.set_value(
        static_cast<float>(score_row(request.row, model->beta)));
    metrics_.record_latency(
        std::chrono::duration<double>(done() - request.enqueued).count());
  }
  metrics_.record_batch(batch.size());
  if (config_.log_every_batches != 0 &&
      metrics_.batches() % config_.log_every_batches == 0) {
    TPA_LOG_INFO << "serve: " << metrics_.snapshot().summary();
  }
}

}  // namespace tpa::serve
