#include "serve/servable_model.hpp"

#include <stdexcept>

namespace tpa::serve {

ServableModel ServableModel::from_saved(const core::SavedModel& saved,
                                        std::uint64_t version) {
  ServableModel model;
  model.version = version;
  model.lambda = saved.lambda;
  model.trained_as = saved.formulation;
  if (saved.formulation == core::Formulation::kPrimal) {
    model.beta = saved.weights;
  } else {
    if (saved.lambda <= 0.0) {
      throw std::invalid_argument(
          "servable model: dual model requires lambda > 0");
    }
    const float inv_lambda = static_cast<float>(1.0 / saved.lambda);
    model.beta.reserve(saved.shared.size());
    for (const float wbar : saved.shared) model.beta.push_back(wbar * inv_lambda);
  }
  if (model.beta.empty()) {
    throw std::invalid_argument("servable model: no usable weights");
  }
  return model;
}

}  // namespace tpa::serve
