// Score-ready form of a trained model.
//
// Training produces either primal weights β or a dual iterate whose shared
// vector is w̄ = Aᵀα; serving always scores ŷ = ⟨ā, β⟩ against a dense β, so
// publication normalises both formulations to the same dense-weight layout
// (dual models map through eq. 5, β = w̄/λ).  Instances are immutable after
// construction and shared across scoring threads via shared_ptr.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model_io.hpp"

namespace tpa::serve {

struct ServableModel {
  std::uint64_t version = 0;
  double lambda = 0.0;
  core::Formulation trained_as = core::Formulation::kPrimal;
  std::vector<float> beta;

  std::size_t num_features() const noexcept { return beta.size(); }

  /// Normalises a SavedModel for scoring.  Throws std::invalid_argument when
  /// the model cannot yield dense weights: empty weight data, or a dual
  /// model with λ <= 0 (eq. 5 would divide by zero).
  static ServableModel from_saved(const core::SavedModel& saved,
                                  std::uint64_t version);
};

}  // namespace tpa::serve
