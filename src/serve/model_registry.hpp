// Versioned model registry with atomic hot-reload.
//
// The live model is a shared_ptr<const ServableModel> behind an atomic: a
// trainer thread publishes new weights while scoring threads keep executing
// in-flight batches against the version they snapshotted — no lock is held
// across scoring, and the old model is freed when its last batch drops the
// reference.  publish_file() goes through core::read_model_file, so a
// truncated or bit-flipped .tpam is rejected by its checksum and the
// previously published model stays live.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/servable_model.hpp"

namespace tpa::serve {

class ModelRegistry {
 public:
  /// The live model; null until the first publish.  Lock-free snapshot —
  /// callers hold the returned pointer for the duration of a batch.
  std::shared_ptr<const ServableModel> current() const noexcept {
    return model_.load(std::memory_order_acquire);
  }

  /// Version of the live model; 0 until the first publish.
  std::uint64_t version() const noexcept {
    const auto model = current();
    return model ? model->version : 0;
  }

  /// Normalises and atomically swaps in a new model; returns its version.
  /// Throws std::invalid_argument (and leaves the old model live) when the
  /// model has no usable weights.
  std::uint64_t publish(const core::SavedModel& saved);

  /// Reads a .tpam file (magic / truncation / checksum validated) and
  /// publishes it.  Throws std::runtime_error on a bad file, leaving the
  /// old model live.
  std::uint64_t publish_file(const std::string& path);

 private:
  std::atomic<std::shared_ptr<const ServableModel>> model_{};
  std::atomic<std::uint64_t> next_version_{1};
};

}  // namespace tpa::serve
