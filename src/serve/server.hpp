// The serving front end: registry + batcher + scorer + metrics behind one
// object.
//
// Lifecycle: construct, publish at least one model, then submit single-row
// requests from any number of threads.  The batcher coalesces them, a pool
// worker snapshots the live model once per batch and scores every row
// against it, and each request's future resolves with ŷ.  A trainer can
// publish() / reload() at any time: in-flight batches finish on the version
// they snapshotted, later batches see the new weights — accepted requests
// are never dropped by a reload.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/metrics.hpp"
#include "serve/model_registry.hpp"
#include "serve/request_batcher.hpp"
#include "util/thread_pool.hpp"

namespace tpa::serve {

struct ServerConfig {
  std::size_t threads = 4;  // pool workers executing batches
  BatcherConfig batcher;
  std::uint64_t log_every_batches = 0;  // 0 = no periodic stats logging
  /// reload() retries a failed file read this many extra times, sleeping
  /// `reload_backoff_ms` (jittered ±50% so replicas watching the same
  /// trainer don't retry in lockstep) between attempts.  A trainer that
  /// saves with write-to-tmp + rename can leave a reader a transiently
  /// missing or half-renamed file; one short retry rides it out while the
  /// old model stays live.  0 disables retrying.
  int reload_retries = 1;
  int reload_backoff_ms = 50;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  /// Drains every accepted request before tearing down.
  ~Server() = default;

  /// Publishes a model (atomic hot-reload); returns the new version.
  std::uint64_t publish(const core::SavedModel& saved);
  /// Loads and publishes a .tpam file.  Transient read failures (file
  /// mid-rename by a trainer, torn partial write) are retried
  /// `reload_retries` times with `reload_backoff_ms` backoff; if every
  /// attempt fails the last error is rethrown and the old model stays live.
  std::uint64_t reload(const std::string& path);

  const ModelRegistry& registry() const noexcept { return registry_; }

  /// Admission-controlled single-row scoring.  Returns kNoModel before the
  /// first publish, kQueueFull under load; accepted rows resolve their
  /// future once a batch executes them.  The row view must stay alive until
  /// then.  Thread-safe.
  SubmitResult submit(sparse::SparseVectorView row);

  /// Blocks until everything accepted so far has completed.
  void drain() { batcher_->drain(); }

  StatsSnapshot stats() const { return metrics_.snapshot(); }

  util::ThreadPool& pool() noexcept { return pool_; }

 private:
  void execute_batch(std::vector<Request>& batch);

  ServerConfig config_;
  ModelRegistry registry_;
  ServingMetrics metrics_;
  util::ThreadPool pool_;
  std::unique_ptr<RequestBatcher> batcher_;  // destroyed before pool_
};

}  // namespace tpa::serve
