#include "serve/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace tpa::serve {

void LatencyHistogram::record(double seconds) noexcept {
  const double us = seconds * 1e6;
  std::size_t bucket = 0;
  if (us >= 1.0) {
    const auto ticks = static_cast<std::uint64_t>(us);
    bucket = std::min<std::size_t>(kBuckets - 1,
                                   static_cast<std::size_t>(std::bit_width(ticks)) - 1);
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::total_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::quantile_us(double q) const noexcept {
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  const double rank = std::clamp(q, 0.0, 1.0) * static_cast<double>(total);
  std::uint64_t running = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    running += counts[b];
    if (static_cast<double>(running) >= rank) {
      return static_cast<double>(std::uint64_t{1} << (b + 1));
    }
  }
  return static_cast<double>(std::uint64_t{1} << kBuckets);
}

StatsSnapshot ServingMetrics::snapshot() const {
  StatsSnapshot s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.wall_seconds = clock_.seconds();
  if (s.wall_seconds > 0.0) {
    s.throughput_rps = static_cast<double>(s.completed) / s.wall_seconds;
  }
  if (s.batches > 0) {
    s.mean_batch_size =
        static_cast<double>(s.completed) / static_cast<double>(s.batches);
  }
  s.p50_us = latency_.quantile_us(0.50);
  s.p95_us = latency_.quantile_us(0.95);
  s.p99_us = latency_.quantile_us(0.99);
  return s;
}

std::string StatsSnapshot::summary() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "served %llu req (%llu rejected) in %llu batches "
                "(mean %.1f): %.0f req/s, latency p50 %.0fus p95 %.0fus "
                "p99 %.0fus, %llu reloads",
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(batches), mean_batch_size,
                throughput_rps, p50_us, p95_us, p99_us,
                static_cast<unsigned long long>(reloads));
  return line;
}

}  // namespace tpa::serve
