#include "serve/metrics.hpp"

#include <cstdio>

namespace tpa::serve {

StatsSnapshot ServingMetrics::snapshot() const {
  StatsSnapshot s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.wall_seconds = clock_.seconds();
  if (s.wall_seconds > 0.0) {
    s.throughput_rps = static_cast<double>(s.completed) / s.wall_seconds;
  }
  if (s.batches > 0) {
    s.mean_batch_size =
        static_cast<double>(s.completed) / static_cast<double>(s.batches);
  }
  s.p50_us = latency_.quantile_us(0.50);
  s.p95_us = latency_.quantile_us(0.95);
  s.p99_us = latency_.quantile_us(0.99);
  return s;
}

void ServingMetrics::reset() noexcept {
  accepted_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  reloads_.store(0, std::memory_order_relaxed);
  latency_.reset();
  clock_.reset();
}

std::string StatsSnapshot::summary() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "served %llu req (%llu rejected) in %llu batches "
                "(mean %.1f): %.0f req/s, latency p50 %.0fus p95 %.0fus "
                "p99 %.0fus, %llu reloads",
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(batches), mean_batch_size,
                throughput_rps, p50_us, p95_us, p99_us,
                static_cast<unsigned long long>(reloads));
  return line;
}

}  // namespace tpa::serve
