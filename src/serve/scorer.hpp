// Sparse scoring engine: ŷ = A·β for batches of CSR rows against the dense
// weights of a ServableModel.
//
// Two row kernels, chosen per row:
//   - gather path: indices are scattered, so the inner loop gathers
//     beta[indices[k]]; written with four independent accumulators to expose
//     instruction-level parallelism.
//   - dense fast path: when a row's column indices are contiguous (common for
//     the dense numeric block of criteo-style rows), the loop reads a straight
//     beta subrange — no gather, auto-vectorises to packed SIMD.
// Rows whose indices exceed the model width score the overlapping prefix and
// ignore the rest (a serving model may be narrower than live traffic).
#pragma once

#include <span>
#include <vector>

#include "serve/servable_model.hpp"
#include "sparse/csr.hpp"

namespace tpa::util {
class ThreadPool;
}

namespace tpa::serve {

/// ⟨row, β⟩ accumulated in double.  Out-of-range indices contribute zero.
double score_row(const sparse::SparseVectorView& row,
                 std::span<const float> beta);

/// Scores rows [begin, end) of `matrix` into out[i - begin].
/// `out` must hold end - begin entries.
void score_rows(const sparse::CsrMatrix& matrix, sparse::Index begin,
                sparse::Index end, std::span<const float> beta,
                std::span<float> out);

/// Whole-matrix batch scoring, parallelised across `pool` with chunked
/// scheduling (one contiguous row range per worker).
std::vector<float> score_matrix(util::ThreadPool& pool,
                                const sparse::CsrMatrix& matrix,
                                const ServableModel& model);

/// In-place variant: writes into `out` (exactly matrix.rows() entries,
/// throws std::invalid_argument otherwise).  Lets batch callers reuse one
/// result buffer across requests instead of allocating per call.
void score_matrix(util::ThreadPool& pool, const sparse::CsrMatrix& matrix,
                  const ServableModel& model, std::span<float> out);

}  // namespace tpa::serve
