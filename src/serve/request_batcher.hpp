// Request batcher: a bounded MPSC queue that coalesces single-row scoring
// requests into batches and executes them on ThreadPool workers.
//
// Any number of producer threads call submit(); one dispatcher thread pops
// requests, forms a batch when either max_batch_size requests are waiting or
// the oldest request has waited max_wait, and hands the batch to the pool.
// Backpressure is two-staged:
//   - admission control: submit() sheds load with a typed Admission verdict
//     (no blocking) once queue_capacity requests are waiting;
//   - in-flight cap: the dispatcher stalls — letting the queue fill and
//     admissions start rejecting — when max_inflight_batches batches are
//     already executing, so a slow scorer cannot build an unbounded backlog
//     inside the pool.
// Shutdown drains: every accepted request is executed before the dispatcher
// exits, so a caller that holds a future always sees it resolve.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace tpa::serve {

/// Typed admission verdict for one submitted request.
enum class Admission {
  kAccepted,     // queued; the future will resolve
  kQueueFull,    // shed by admission control — retry later
  kNoModel,      // nothing published yet (used by Server)
  kShutdown,     // batcher is stopping
};

const char* admission_name(Admission a) noexcept;

/// One queued scoring request.  The row view aliases caller-owned storage,
/// which must stay alive until the future resolves.
struct Request {
  sparse::SparseVectorView row;
  std::promise<float> result;
  std::chrono::steady_clock::time_point enqueued;
};

struct SubmitResult {
  Admission status = Admission::kShutdown;
  std::future<float> prediction;  // valid only when accepted

  bool accepted() const noexcept { return status == Admission::kAccepted; }
};

struct BatcherConfig {
  std::size_t max_batch_size = 64;
  std::chrono::microseconds max_wait{200};
  std::size_t queue_capacity = 1024;
  std::size_t max_inflight_batches = 0;  // 0 = 2 × pool workers
};

class RequestBatcher {
 public:
  /// `on_batch` runs on a pool worker with exclusive ownership of the batch;
  /// it must fulfil every request's promise.  It must not submit work back
  /// to `pool` (the pool is shared with other in-flight batches).
  using BatchFn = std::function<void(std::vector<Request>&)>;

  RequestBatcher(BatcherConfig config, util::ThreadPool& pool,
                 BatchFn on_batch);
  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;
  /// Stops admissions, drains every accepted request, joins the dispatcher.
  ~RequestBatcher();

  /// Non-blocking admission: rejects with kQueueFull / kShutdown instead of
  /// waiting.  Thread-safe.
  SubmitResult submit(sparse::SparseVectorView row);

  /// Blocks until the queue is empty and no batch is executing.
  void drain();

  /// Number of requests currently waiting (diagnostic).
  std::size_t queued() const;

 private:
  void dispatcher_loop();

  BatcherConfig config_;
  util::ThreadPool& pool_;
  BatchFn on_batch_;

  mutable std::mutex mutex_;
  std::condition_variable queue_event_;     // dispatcher wake-ups
  std::condition_variable inflight_event_;  // batch completions / drain
  std::deque<Request> queue_;
  std::size_t inflight_batches_ = 0;
  bool stopping_ = false;
  std::thread dispatcher_;
};

}  // namespace tpa::serve
