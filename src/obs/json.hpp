// Minimal JSON rendering helpers shared by the observability exporters (the
// metrics registry, the Chrome-trace writer, the tools' --metrics-out run
// reports).  Writing only — parsing lives in obs/json_parse.hpp (used by the
// offline traceview tool); CI additionally validates exports with an
// independent parser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tpa::obs {

/// `s` with JSON string escaping applied and surrounding double quotes.
std::string json_quote(std::string_view s);

/// `v` printed with enough digits to round-trip (%.17g); "null" for NaN/inf,
/// which JSON cannot represent — a gap reads as missing data, never as a
/// forged zero.
std::string json_number(double v);

/// Incremental builder for one flat JSON object.  Field types are spelled
/// out in the method names (field_str / field_num / ...) because overloading
/// on const char* vs bool vs double is a resolution trap.
class JsonObject {
 public:
  JsonObject& field_str(std::string_view key, std::string_view value);
  JsonObject& field_num(std::string_view key, double value);
  JsonObject& field_int(std::string_view key, std::int64_t value);
  JsonObject& field_uint(std::string_view key, std::uint64_t value);
  JsonObject& field_bool(std::string_view key, bool value);
  /// `value` is spliced in verbatim (a pre-rendered object or array).
  JsonObject& field_raw(std::string_view key, std::string_view value);

  /// The complete object, e.g. {"a": 1, "b": "x"}.
  std::string str() const;

 private:
  void key(std::string_view k);
  std::string body_;
};

}  // namespace tpa::obs
