// Low-overhead span tracer.
//
// Spans and instants are recorded into fixed-size per-thread ring buffers
// and exported on demand as Chrome trace-event JSON ("traceEvents"), which
// Perfetto / chrome://tracing load directly.  Overhead budget:
//
//   disabled — TraceSpan's constructor is one relaxed atomic load (the
//     enabled flag); nothing else runs.  This is cheap enough to leave in
//     every epoch-level phase permanently.
//   enabled  — two steady_clock reads per span (begin/end) plus one ring
//     slot store; no locks, no allocation after a thread's first event.
//
// A span is one "X" (complete) event recorded at destruction, so nesting is
// by containment and a span never occupies more than one ring slot.  When a
// ring wraps, the oldest events are overwritten and counted as dropped —
// tracing never blocks or grows without bound.
//
// Causal links ("flows"): trace_flow_begin/trace_flow_end record Chrome flow
// events ("s"/"f") carrying a caller-chosen 64-bit id.  A flow binds to the
// enclosing slice on its track (Perfetto matches by timestamp containment),
// so emitting the begin inside the producing span and the end inside the
// consuming span draws an arrow between them — the cluster drivers use this
// to link each worker's local_solve → delta push → master reduce → broadcast
// chain across tracks.  Ids only need to be unique per begin/end pair within
// one trace; matching is by (name, id).
//
// Timelines ("tracks"): by default events land on the recording OS thread's
// track.  A caller may pin events to a virtual track instead (the
// distributed solver gives each simulated worker its own track, so the
// per-worker solve/reduce/broadcast timeline of a fault drill is visible
// even though the simulation runs on one thread).  Name tracks with
// set_track_name().
//
// Enabling: set_trace_enabled(true) in code, or the TPA_TRACE environment
// variable — TPA_TRACE=1 enables recording; any other non-empty, non-zero
// value both enables recording and writes the Chrome trace to that path at
// process exit.  Tools expose --trace-out on top of this.
//
// Export contract: chrome_trace_json()/write_chrome_trace() are meant to run
// after the traced work quiesces (tools call them at the end of main).  An
// export racing with active recorders may observe a torn in-progress slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace tpa::obs {

/// Track sentinel: record on the calling OS thread's own track.
inline constexpr std::int32_t kCurrentThread = -1;
/// Arg sentinel: the event carries no numeric argument.
inline constexpr std::int64_t kNoArg = std::numeric_limits<std::int64_t>::min();

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool enabled) noexcept;

/// Microseconds since the process's trace epoch (monotonic).
double trace_now_us() noexcept;

/// Records a complete event ("X"): [ts_us, ts_us + dur_us) on `track`.
/// `name` must outlive the tracer (string literals).  No-op when disabled.
void trace_complete(const char* name, double ts_us, double dur_us,
                    std::int32_t track = kCurrentThread,
                    std::int64_t arg = kNoArg);

/// Records an instant event ("i") at now.  No-op when disabled.
void trace_instant(const char* name, std::int32_t track = kCurrentThread,
                   std::int64_t arg = kNoArg);

/// Records the producing ("s") half of a flow at now.  Emit inside the span
/// that produced the linked work so the arrow starts there.  No-op when
/// disabled.
void trace_flow_begin(const char* name, std::uint64_t flow_id,
                      std::int32_t track = kCurrentThread);

/// Records the consuming ("f", bp="e") half of a flow at now.  Emit inside
/// the span that consumed the linked work.  An end without a matching begin
/// (or vice versa, e.g. after a ring wrap) renders as a dangling arrow, not
/// an error.  No-op when disabled.
void trace_flow_end(const char* name, std::uint64_t flow_id,
                    std::int32_t track = kCurrentThread);

/// Names a virtual track (or an OS-thread track id) in the exported trace.
void set_track_name(std::int32_t track, const std::string& name);

/// Key/value pair exported in the trace's "otherData" section (and available
/// to report writers) — e.g. the linalg layer tags the active kernel
/// backend here.
void set_trace_metadata(const std::string& key, const std::string& value);
std::string trace_metadata(const std::string& key);

/// RAII span: samples the clock at construction, records one complete event
/// at destruction.  When tracing is disabled at construction the span is
/// fully disarmed (a later enable does not produce a half-open event).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int32_t track = kCurrentThread,
                     std::int64_t arg = kNoArg) noexcept
      : name_(trace_enabled() ? name : nullptr),
        track_(track),
        arg_(arg),
        start_us_(name_ != nullptr ? trace_now_us() : 0.0) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (name_ != nullptr) {
      trace_complete(name_, start_us_, trace_now_us() - start_us_, track_,
                     arg_);
    }
  }

 private:
  const char* name_;
  std::int32_t track_;
  std::int64_t arg_;
  double start_us_;
};

/// Serialises every thread's surviving events (plus track names and
/// metadata) as a Chrome trace-event JSON document.
std::string chrome_trace_json();
/// Writes chrome_trace_json() to `path`; throws std::runtime_error on I/O
/// failure.
void write_chrome_trace(const std::string& path);

/// One surviving ring-buffer event, resolved for in-process consumers (the
/// obs::attribution analyzer): the name is copied out and kCurrentThread is
/// replaced by the recording thread's track id.
struct TraceRecord {
  std::string name;
  char phase = 'X';    // 'X' complete, 'i' instant, 's'/'f' flow begin/end
  double ts_us = 0.0;
  double dur_us = 0.0;  // complete events only
  std::int32_t track = 0;
  std::int64_t arg = kNoArg;
  std::uint64_t flow_id = 0;  // flow events only
};

/// Snapshot of every thread's surviving events, oldest first per thread.
/// Same quiescence contract as chrome_trace_json().
std::vector<TraceRecord> trace_records();

/// Snapshot of the names registered with set_track_name().
std::map<std::int32_t, std::string> trace_track_names();

/// Events recorded / overwritten-because-the-ring-wrapped since start (or
/// the last reset_trace()).
std::uint64_t trace_events_recorded() noexcept;
std::uint64_t trace_events_dropped() noexcept;

/// Clears every ring buffer (track names and metadata survive).  Test-only:
/// must not race with active recorders.
void reset_trace() noexcept;

}  // namespace tpa::obs
