// Round-attribution: the paper's time decomposition made machine-checkable.
//
// The cluster drivers charge every simulated round as compute + host
// arithmetic + PCIe staging + exposed network (+ straggler wait and, in the
// async solver, stale-damped/rejected overhead).  This module gives that
// decomposition a first-class representation:
//
//   RoundAttribution       one round's (or a run's cumulative) breakdown in
//                          simulated seconds; components sum to round
//                          wall-time by construction.
//   record_round_attribution
//                          called by DistributedSolver / AsyncSolver once per
//                          round: updates the round.attr.* metrics and, when
//                          tracing, emits an "attr/round" span plus tiled
//                          "attr/<component>" sub-spans (in simulated
//                          microseconds) on a dedicated virtual track so the
//                          breakdown is visible in Perfetto next to the
//                          wall-clock worker tracks.
//   analyze_attribution    offline analyzer over trace records (in-process or
//                          re-parsed from an exported Chrome trace): per-round
//                          attribution rows with a residual check, per-worker
//                          utilization, and the top-N critical-path spans.
//                          tpascd_traceview is a thin CLI over this.
//
// The invariant the CI attribution job gates on: for every round row,
// sum(components) == round total within 1% (the engine-side recorder makes
// this exact up to float rounding; a larger residual means dropped events or
// a solver charging time outside the decomposition).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace tpa::obs {

/// One round's time decomposition, simulated seconds.  Field order is the
/// canonical component order (see attribution_component_name).
struct RoundAttribution {
  double compute_seconds = 0.0;         // critical worker's nominal solve
  double host_seconds = 0.0;            // master-side host arithmetic
  double pcie_seconds = 0.0;            // staging copies to/from device
  double network_seconds = 0.0;         // exposed (non-overlapped) comms
  double straggler_wait_seconds = 0.0;  // waiting beyond the critical compute
  double stale_overhead_seconds = 0.0;  // stale-rejected / damped-away time

  double total() const {
    return compute_seconds + host_seconds + pcie_seconds + network_seconds +
           straggler_wait_seconds + stale_overhead_seconds;
  }

  RoundAttribution& operator+=(const RoundAttribution& o) {
    compute_seconds += o.compute_seconds;
    host_seconds += o.host_seconds;
    pcie_seconds += o.pcie_seconds;
    network_seconds += o.network_seconds;
    straggler_wait_seconds += o.straggler_wait_seconds;
    stale_overhead_seconds += o.stale_overhead_seconds;
    return *this;
  }
};

inline constexpr int kAttributionComponents = 6;

/// Canonical component names, index 0..5: "compute", "host", "pcie",
/// "network", "straggler_wait", "stale_overhead".
const char* attribution_component_name(int index);

/// The indexed component of `attr`, canonical order.
double attribution_component(const RoundAttribution& attr, int index);
double& attribution_component(RoundAttribution& attr, int index);

/// Span name used on the attribution track for the indexed component,
/// e.g. "attr/compute".
const char* attribution_span_name(int index);

/// Span name of the whole-round envelope on the attribution track.
inline constexpr const char* kAttrRoundSpan = "attr/round";

/// Records one round: bumps the cumulative round.attr.* gauges/counter from
/// `cumulative` and, when tracing is enabled, emits the round envelope
/// (duration `round_total_seconds`, the engine's true round wall-time) and
/// component sub-spans tiled from `start_seconds` on `attr_track`.  The spans
/// use simulated microseconds; callers keep a monotone attribution clock so
/// rounds tile left-to-right even when the solver's own sim clock rewinds
/// (async checkpoint restart).  Zero components are skipped.
void record_round_attribution(const RoundAttribution& round,
                              const RoundAttribution& cumulative,
                              double round_total_seconds, double start_seconds,
                              std::int64_t round_index,
                              std::int32_t attr_track);

/// One attribution row reconstructed from trace records: the "attr/round"
/// span and its component sub-spans for (track, round).
struct AttributionRow {
  std::int32_t track = 0;
  std::int64_t round = 0;
  double total_us = 0.0;
  double components_us[kAttributionComponents] = {};

  double component_sum_us() const {
    double sum = 0.0;
    for (double c : components_us) sum += c;
    return sum;
  }
  /// |sum(components) - total| / total; 0 for an empty round.
  double residual_fraction() const {
    if (total_us <= 0.0) return 0.0;
    const double diff = component_sum_us() - total_us;
    return (diff < 0.0 ? -diff : diff) / total_us;
  }
};

/// Wall-clock busy time of one worker track across the trace window.
struct TrackUtilization {
  std::int32_t track = 0;
  std::string name;
  double busy_us = 0.0;    // sum of complete-span durations on the track
  double window_us = 0.0;  // global [first span start, last span end]
  std::uint64_t spans = 0;

  double utilization() const {
    return window_us > 0.0 ? busy_us / window_us : 0.0;
  }
};

/// One critical-path contributor: a component slice of some round, ranked by
/// duration.
struct CriticalSpan {
  std::int32_t track = 0;
  std::int64_t round = 0;
  std::string component;
  double dur_us = 0.0;
};

struct AttributionReport {
  /// Per-round rows, ordered (track, round).
  std::vector<AttributionRow> rounds;
  /// Per-track cumulative rows (round == -1), same component layout.
  std::vector<AttributionRow> track_totals;
  std::vector<TrackUtilization> utilization;
  /// Top-N component slices by duration, descending.
  std::vector<CriticalSpan> critical;
  /// Worst residual over all non-empty rounds (the CI gate input).
  double max_residual_fraction = 0.0;
};

/// Builds the report from trace records — either trace_records() in-process
/// or records reconstructed from an exported Chrome trace (traceview).
/// Attribution spans are matched to rounds by (track, arg); worker
/// utilization covers tracks whose registered name contains "worker".
AttributionReport analyze_attribution(
    const std::vector<TraceRecord>& records,
    const std::map<std::int32_t, std::string>& track_names, int top_n = 10);

}  // namespace tpa::obs
