#include "obs/build_info.hpp"

namespace tpa::obs {

namespace {

#ifndef TPA_GIT_SHA
#define TPA_GIT_SHA "unknown"
#endif
#ifndef TPA_BUILD_TYPE
#define TPA_BUILD_TYPE "unknown"
#endif

#if defined(__clang__)
constexpr const char* kCompiler = "clang " __clang_version__;
#elif defined(__GNUC__)
constexpr const char* kCompiler = "gcc " __VERSION__;
#else
constexpr const char* kCompiler = "unknown";
#endif

}  // namespace

BuildInfo build_info() noexcept {
  BuildInfo info;
  info.git_sha = TPA_GIT_SHA;
  info.compiler = kCompiler;
  info.build_type = TPA_BUILD_TYPE;
  return info;
}

}  // namespace tpa::obs
