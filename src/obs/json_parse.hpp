// Minimal recursive-descent JSON parser for the offline tools (tpascd_traceview
// reads back the Chrome traces and JSONL run reports the exporters write).
// Supports the full JSON grammar the repo emits — objects, arrays, strings with
// \uXXXX escapes (incl. surrogate pairs), numbers, true/false/null — with a
// recursion-depth limit.  Not built for adversarial input or speed; traces are
// a few MB at most.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tpa::obs {

/// One parsed JSON value.  Objects keep fields in document order (the
/// exporters already write sorted keys where ordering matters).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First field named `key`, or nullptr if absent / not an object.
  const JsonValue* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Convenience accessors with defaults for absent/mistyped fields.
  double num_or(std::string_view key, double fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->is_number() ? v->number : fallback;
  }
  std::string str_or(std::string_view key, std::string_view fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->is_string() ? v->string : std::string(fallback);
  }
};

/// Parses one JSON document covering all of `text` (trailing whitespace is
/// allowed, trailing garbage is not).  Throws std::runtime_error with a byte
/// offset on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace tpa::obs
