#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>

namespace tpa::obs {

void Histogram::record(double value) noexcept {
  std::size_t bucket = 0;
  if (value >= 1.0) {
    const auto ticks = static_cast<std::uint64_t>(value);
    bucket = std::min<std::size_t>(
        kBuckets - 1, static_cast<std::size_t>(std::bit_width(ticks)) - 1);
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::total_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::quantile(double q) const noexcept {
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  const double rank = std::max(
      1.0, std::clamp(q, 0.0, 1.0) * static_cast<double>(total));
  std::uint64_t running = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    running += counts[b];
    if (static_cast<double>(running) >= rank) {
      return static_cast<double>(std::uint64_t{1} << (b + 1));
    }
  }
  return static_cast<double>(std::uint64_t{1} << kBuckets);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

}  // namespace tpa::obs
