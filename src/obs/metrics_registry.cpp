#include "obs/metrics_registry.hpp"

#include <cstdio>
#include <ostream>

#include "obs/json.hpp"

namespace tpa::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_[name];
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    s.counters.emplace_back(name, counter.value());
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    s.gauges.emplace_back(name, gauge.value());
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramStats stats;
    stats.name = name;
    stats.count = histogram.total_count();
    stats.p50 = histogram.quantile(0.50);
    stats.p95 = histogram.quantile(0.95);
    stats.p99 = histogram.quantile(0.99);
    s.histograms.push_back(std::move(stats));
  }
  return s;
}

std::string MetricsRegistry::to_text() const {
  const auto s = snapshot();
  std::string out;
  char line[256];
  for (const auto& [name, value] : s.counters) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : s.gauges) {
    std::snprintf(line, sizeof(line), "gauge %s %.17g\n", name.c_str(), value);
    out += line;
  }
  for (const auto& h : s.histograms) {
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%llu p50=%.0f p95=%.0f p99=%.0f\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.p50, h.p95, h.p99);
    out += line;
  }
  return out;
}

void MetricsRegistry::write_jsonl(std::ostream& out) const {
  const auto s = snapshot();
  for (const auto& [name, value] : s.counters) {
    out << JsonObject()
               .field_str("type", "counter")
               .field_str("name", name)
               .field_uint("value", value)
               .str()
        << "\n";
  }
  for (const auto& [name, value] : s.gauges) {
    out << JsonObject()
               .field_str("type", "gauge")
               .field_str("name", name)
               .field_num("value", value)
               .str()
        << "\n";
  }
  for (const auto& h : s.histograms) {
    out << JsonObject()
               .field_str("type", "histogram")
               .field_str("name", h.name)
               .field_uint("count", h.count)
               .field_num("p50", h.p50)
               .field_num("p95", h.p95)
               .field_num("p99", h.p99)
               .str()
        << "\n";
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter.reset();
  for (auto& [name, gauge] : gauges_) gauge.reset();
  for (auto& [name, histogram] : histograms_) histogram.reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace tpa::obs
