#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace tpa::obs {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonObject::key(std::string_view k) {
  if (!body_.empty()) body_ += ", ";
  body_ += json_quote(k);
  body_ += ": ";
}

JsonObject& JsonObject::field_str(std::string_view k, std::string_view value) {
  key(k);
  body_ += json_quote(value);
  return *this;
}

JsonObject& JsonObject::field_num(std::string_view k, double value) {
  key(k);
  body_ += json_number(value);
  return *this;
}

JsonObject& JsonObject::field_int(std::string_view k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field_uint(std::string_view k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::field_bool(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::field_raw(std::string_view k, std::string_view value) {
  key(k);
  body_ += value;
  return *this;
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

}  // namespace tpa::obs
