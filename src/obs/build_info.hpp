// Build provenance for run reports and benchmark artefacts: committed
// BENCH_*.json and --metrics-out reports must be attributable to a specific
// source revision, compiler and configuration.
//
// The git SHA is captured at CMake configure time (src/obs/CMakeLists.txt)
// — re-run CMake after committing if you need the exported SHA exact.
// Kernel-layer facts (backend, -march=native) live in linalg, which sits
// below obs; report writers combine both.
#pragma once

namespace tpa::obs {

struct BuildInfo {
  const char* git_sha;     // short commit hash, "unknown" outside a checkout
  const char* compiler;    // compiler id + version string
  const char* build_type;  // CMAKE_BUILD_TYPE, e.g. "Release"
};

BuildInfo build_info() noexcept;

}  // namespace tpa::obs
