#include "obs/attribution.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics_registry.hpp"

namespace tpa::obs {

namespace {

constexpr const char* kComponentNames[kAttributionComponents] = {
    "compute", "host", "pcie", "network", "straggler_wait", "stale_overhead",
};

constexpr const char* kSpanNames[kAttributionComponents] = {
    "attr/compute",        "attr/host",
    "attr/pcie",           "attr/network",
    "attr/straggler_wait", "attr/stale_overhead",
};

}  // namespace

const char* attribution_component_name(int index) {
  return kComponentNames[index];
}

double attribution_component(const RoundAttribution& attr, int index) {
  switch (index) {
    case 0: return attr.compute_seconds;
    case 1: return attr.host_seconds;
    case 2: return attr.pcie_seconds;
    case 3: return attr.network_seconds;
    case 4: return attr.straggler_wait_seconds;
    default: return attr.stale_overhead_seconds;
  }
}

double& attribution_component(RoundAttribution& attr, int index) {
  switch (index) {
    case 0: return attr.compute_seconds;
    case 1: return attr.host_seconds;
    case 2: return attr.pcie_seconds;
    case 3: return attr.network_seconds;
    case 4: return attr.straggler_wait_seconds;
    default: return attr.stale_overhead_seconds;
  }
}

const char* attribution_span_name(int index) { return kSpanNames[index]; }

void record_round_attribution(const RoundAttribution& round,
                              const RoundAttribution& cumulative,
                              double round_total_seconds, double start_seconds,
                              std::int64_t round_index,
                              std::int32_t attr_track) {
  auto& registry = metrics();
  for (int i = 0; i < kAttributionComponents; ++i) {
    registry
        .gauge(std::string("round.attr.") + kComponentNames[i] + "_seconds")
        .set(attribution_component(cumulative, i));
  }
  registry.gauge("round.attr.total_seconds").set(cumulative.total());
  registry.counter("round.attr.rounds").add(1);

  if (!trace_enabled()) return;
  // The envelope carries the engine's true round wall-time; the component
  // tiles should cover it exactly up to float rounding (traceview checks the
  // residual).  Everything on this track is in simulated microseconds.
  trace_complete(kAttrRoundSpan, start_seconds * 1e6,
                 round_total_seconds * 1e6, attr_track, round_index);
  double cursor = start_seconds;
  for (int i = 0; i < kAttributionComponents; ++i) {
    const double seconds = attribution_component(round, i);
    if (seconds <= 0.0) continue;
    trace_complete(kSpanNames[i], cursor * 1e6, seconds * 1e6, attr_track,
                   round_index);
    cursor += seconds;
  }
}

namespace {

int component_index(const std::string& span_name) {
  for (int i = 0; i < kAttributionComponents; ++i) {
    if (span_name == kSpanNames[i]) return i;
  }
  return -1;
}

}  // namespace

AttributionReport analyze_attribution(
    const std::vector<TraceRecord>& records,
    const std::map<std::int32_t, std::string>& track_names, int top_n) {
  AttributionReport report;

  // (track, round) -> row index; rounds arrive mostly in order, the final
  // sort makes ordering deterministic regardless.
  std::map<std::pair<std::int32_t, std::int64_t>, std::size_t> row_index;
  const auto row_for = [&](std::int32_t track,
                           std::int64_t round) -> AttributionRow& {
    const auto key = std::make_pair(track, round);
    const auto it = row_index.find(key);
    if (it != row_index.end()) return report.rounds[it->second];
    row_index.emplace(key, report.rounds.size());
    AttributionRow row;
    row.track = track;
    row.round = round;
    report.rounds.push_back(row);
    return report.rounds.back();
  };

  std::map<std::int32_t, TrackUtilization> util;
  double window_begin_us = 0.0;
  double window_end_us = 0.0;
  bool window_seen = false;

  for (const TraceRecord& record : records) {
    if (record.phase != 'X') continue;
    if (record.name == kAttrRoundSpan) {
      row_for(record.track, record.arg).total_us += record.dur_us;
      continue;
    }
    const int component = component_index(record.name);
    if (component >= 0) {
      AttributionRow& row = row_for(record.track, record.arg);
      row.components_us[component] += record.dur_us;
      CriticalSpan span;
      span.track = record.track;
      span.round = record.arg;
      span.component = kComponentNames[component];
      span.dur_us = record.dur_us;
      report.critical.push_back(std::move(span));
      continue;
    }
    // Wall-clock span: contributes to the utilization window, and to a
    // worker track's busy time.
    if (!window_seen || record.ts_us < window_begin_us) {
      window_begin_us = record.ts_us;
    }
    if (!window_seen || record.ts_us + record.dur_us > window_end_us) {
      window_end_us = record.ts_us + record.dur_us;
    }
    window_seen = true;
    const auto name_it = track_names.find(record.track);
    if (name_it != track_names.end() &&
        name_it->second.find("worker") != std::string::npos) {
      TrackUtilization& u = util[record.track];
      u.track = record.track;
      u.name = name_it->second;
      u.busy_us += record.dur_us;
      u.spans += 1;
    }
  }

  std::sort(report.rounds.begin(), report.rounds.end(),
            [](const AttributionRow& a, const AttributionRow& b) {
              return a.track != b.track ? a.track < b.track
                                        : a.round < b.round;
            });

  // Per-track cumulative rows and the worst residual.
  std::map<std::int32_t, AttributionRow> totals;
  for (const AttributionRow& row : report.rounds) {
    if (row.total_us > 0.0) {
      report.max_residual_fraction =
          std::max(report.max_residual_fraction, row.residual_fraction());
    }
    AttributionRow& total = totals[row.track];
    total.track = row.track;
    total.round = -1;
    total.total_us += row.total_us;
    for (int i = 0; i < kAttributionComponents; ++i) {
      total.components_us[i] += row.components_us[i];
    }
  }
  for (const auto& [track, row] : totals) {
    report.track_totals.push_back(row);
  }

  const double window_us = window_seen ? window_end_us - window_begin_us : 0.0;
  for (auto& [track, u] : util) {
    u.window_us = window_us;
    report.utilization.push_back(u);
  }

  std::sort(report.critical.begin(), report.critical.end(),
            [](const CriticalSpan& a, const CriticalSpan& b) {
              return a.dur_us > b.dur_us;
            });
  if (top_n >= 0 &&
      report.critical.size() > static_cast<std::size_t>(top_n)) {
    report.critical.resize(static_cast<std::size_t>(top_n));
  }

  return report;
}

}  // namespace tpa::obs
