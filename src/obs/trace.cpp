#include "obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "obs/json.hpp"

namespace tpa::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;   // complete events only
  std::int32_t track = kCurrentThread;
  std::int64_t arg = kNoArg;
  std::uint64_t flow_id = 0;  // flow events only
  char phase = 'X';      // 'X' complete, 'i' instant, 's'/'f' flow halves
};

/// One ring per recording thread.  Only the owning thread writes; exporters
/// read `recorded` with acquire so every slot published before it is
/// visible.  kCapacity events ≈ 1.3 MB — paid only by threads that trace.
struct ThreadBuffer {
  static constexpr std::size_t kCapacity = std::size_t{1} << 15;

  explicit ThreadBuffer(int tid_in) : events(kCapacity), tid(tid_in) {}

  void record(const TraceEvent& event) noexcept {
    const std::uint64_t n = recorded.load(std::memory_order_relaxed);
    events[static_cast<std::size_t>(n % kCapacity)] = event;
    recorded.store(n + 1, std::memory_order_release);
  }

  std::vector<TraceEvent> events;
  std::atomic<std::uint64_t> recorded{0};
  int tid;
};

struct TraceState {
  Clock::time_point epoch = Clock::now();
  std::mutex mutex;  // guards buffers growth, track names, metadata
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::map<std::int32_t, std::string> track_names;
  std::map<std::string, std::string> metadata;
};

TraceState& state() {
  static TraceState s;
  return s;
}

thread_local ThreadBuffer* tl_buffer = nullptr;

ThreadBuffer& local_buffer() {
  if (tl_buffer == nullptr) {
    auto& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.buffers.push_back(
        std::make_unique<ThreadBuffer>(static_cast<int>(s.buffers.size())));
    tl_buffer = s.buffers.back().get();
  }
  return *tl_buffer;
}

std::string g_atexit_path;

/// TPA_TRACE environment hook: "1" enables recording; any other non-empty,
/// non-"0" value additionally writes the Chrome trace there at exit.  The
/// TraceState singleton is forced into existence *before* std::atexit so its
/// destructor runs after the exit handler (LIFO teardown).
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("TPA_TRACE");
    if (env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0) {
      return;
    }
    (void)state();
    detail::g_trace_enabled.store(true, std::memory_order_relaxed);
    if (std::strcmp(env, "1") != 0) {
      g_atexit_path = env;
      std::atexit([] { write_chrome_trace(g_atexit_path); });
    }
  }
};
const EnvInit g_env_init;

// Callers hold state().mutex (or are otherwise sure `buffers` is not
// growing concurrently).
std::uint64_t dropped_unlocked(const TraceState& s) noexcept {
  std::uint64_t dropped = 0;
  for (const auto& buffer : s.buffers) {
    const std::uint64_t n = buffer->recorded.load(std::memory_order_acquire);
    if (n > ThreadBuffer::kCapacity) dropped += n - ThreadBuffer::kCapacity;
  }
  return dropped;
}

void append_event_json(std::string& out, const TraceEvent& event, int tid) {
  const char phase_str[2] = {event.phase, '\0'};
  JsonObject object;
  object.field_str("name", event.name);
  if (event.phase == 's' || event.phase == 'f') {
    // Chrome flow events match on (cat, name, id); "bp":"e" binds the finish
    // to its enclosing slice instead of the next one.
    object.field_str("cat", "flow").field_str("ph", phase_str);
    if (event.phase == 'f') object.field_str("bp", "e");
    object.field_num("ts", event.ts_us).field_uint("id", event.flow_id);
  } else {
    object.field_str("ph", phase_str).field_num("ts", event.ts_us);
    if (event.phase == 'X') {
      object.field_num("dur", event.dur_us);
    } else {
      object.field_str("s", "t");  // instant scoped to its thread/track
    }
  }
  object.field_int("pid", 1).field_int(
      "tid", event.track == kCurrentThread ? tid : event.track);
  if (event.arg != kNoArg) {
    object.field_raw("args",
                     JsonObject().field_int("v", event.arg).str());
  }
  out += object.str();
}

}  // namespace

void set_trace_enabled(bool enabled) noexcept {
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

double trace_now_us() noexcept {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   state().epoch)
      .count();
}

void trace_complete(const char* name, double ts_us, double dur_us,
                    std::int32_t track, std::int64_t arg) {
  if (!trace_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.ts_us = ts_us;
  event.dur_us = dur_us < 0.0 ? 0.0 : dur_us;
  event.track = track;
  event.arg = arg;
  event.phase = 'X';
  local_buffer().record(event);
}

void trace_instant(const char* name, std::int32_t track, std::int64_t arg) {
  if (!trace_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.ts_us = trace_now_us();
  event.track = track;
  event.arg = arg;
  event.phase = 'i';
  local_buffer().record(event);
}

namespace {

void record_flow(const char* name, std::uint64_t flow_id, std::int32_t track,
                 char phase) {
  TraceEvent event;
  event.name = name;
  event.ts_us = trace_now_us();
  event.track = track;
  event.flow_id = flow_id;
  event.phase = phase;
  local_buffer().record(event);
}

}  // namespace

void trace_flow_begin(const char* name, std::uint64_t flow_id,
                      std::int32_t track) {
  if (!trace_enabled()) return;
  record_flow(name, flow_id, track, 's');
}

void trace_flow_end(const char* name, std::uint64_t flow_id,
                    std::int32_t track) {
  if (!trace_enabled()) return;
  record_flow(name, flow_id, track, 'f');
}

void set_track_name(std::int32_t track, const std::string& name) {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.track_names[track] = name;
}

void set_trace_metadata(const std::string& key, const std::string& value) {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.metadata[key] = value;
}

std::string trace_metadata(const std::string& key) {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.metadata.find(key);
  return it == s.metadata.end() ? std::string() : it->second;
}

std::string chrome_trace_json() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);

  std::string out = "{\"displayTimeUnit\": \"ms\", \"otherData\": ";
  JsonObject metadata;
  for (const auto& [key, value] : s.metadata) {
    metadata.field_str(key, value);
  }
  metadata.field_uint("dropped_events", dropped_unlocked(s));
  out += metadata.str();
  out += ", \"traceEvents\": [";

  bool first = true;
  const auto separator = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };

  for (const auto& [track, name] : s.track_names) {
    separator();
    out += JsonObject()
               .field_str("name", "thread_name")
               .field_str("ph", "M")
               .field_int("pid", 1)
               .field_int("tid", track)
               .field_raw("args",
                          JsonObject().field_str("name", name).str())
               .str();
  }
  for (const auto& buffer : s.buffers) {
    const std::uint64_t n = buffer->recorded.load(std::memory_order_acquire);
    const std::size_t kept =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            n, ThreadBuffer::kCapacity));
    // Oldest surviving event first: a wrapped ring starts at n % capacity.
    const std::size_t start =
        n <= ThreadBuffer::kCapacity
            ? 0
            : static_cast<std::size_t>(n % ThreadBuffer::kCapacity);
    for (std::size_t i = 0; i < kept; ++i) {
      separator();
      append_event_json(
          out, buffer->events[(start + i) % ThreadBuffer::kCapacity],
          buffer->tid);
    }
  }
  out += "\n]}\n";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("trace: cannot open " + path);
  }
  file << chrome_trace_json();
  if (!file) {
    throw std::runtime_error("trace: write failed for " + path);
  }
}

std::vector<TraceRecord> trace_records() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<TraceRecord> records;
  for (const auto& buffer : s.buffers) {
    const std::uint64_t n = buffer->recorded.load(std::memory_order_acquire);
    const std::size_t kept =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            n, ThreadBuffer::kCapacity));
    const std::size_t start =
        n <= ThreadBuffer::kCapacity
            ? 0
            : static_cast<std::size_t>(n % ThreadBuffer::kCapacity);
    for (std::size_t i = 0; i < kept; ++i) {
      const TraceEvent& event =
          buffer->events[(start + i) % ThreadBuffer::kCapacity];
      TraceRecord record;
      record.name = event.name;
      record.phase = event.phase;
      record.ts_us = event.ts_us;
      record.dur_us = event.dur_us;
      record.track =
          event.track == kCurrentThread ? buffer->tid : event.track;
      record.arg = event.arg;
      record.flow_id = event.flow_id;
      records.push_back(std::move(record));
    }
  }
  return records;
}

std::map<std::int32_t, std::string> trace_track_names() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.track_names;
}

std::uint64_t trace_events_recorded() noexcept {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : s.buffers) {
    total += buffer->recorded.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t trace_events_dropped() noexcept {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return dropped_unlocked(s);
}

void reset_trace() noexcept {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& buffer : s.buffers) {
    buffer->recorded.store(0, std::memory_order_relaxed);
  }
}

}  // namespace tpa::obs
