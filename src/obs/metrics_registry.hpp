// Process-wide metrics registry: named counters, gauges and histograms with
// lock-free recording.
//
// Registration (the first counter("x") for a given name) takes a mutex, so
// hot paths look a metric up once and keep the returned reference — node
// addresses are stable for the registry's lifetime.  Recording on a held
// reference is a single relaxed atomic operation.
//
// Naming convention: dotted lowercase paths grouped by layer, e.g.
// "train.epochs", "cluster.event.crash", "serve.batches".  The snapshot,
// text and JSONL exporters emit metrics sorted by name.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace tpa::obs {

/// Monotone counter.  add() is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar.  set() is one relaxed store.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  /// Finds or registers the named metric; the reference stays valid (and its
  /// address stable) for the registry's lifetime.  Thread-safe.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct HistogramStats {
    std::string name;
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// Point-in-time copy of every registered metric, sorted by name.
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramStats> histograms;
  };
  Snapshot snapshot() const;

  /// One metric per line: "counter <name> <value>" / "gauge <name> <value>" /
  /// "histogram <name> count=<n> p50=<v> p95=<v> p99=<v>".
  std::string to_text() const;

  /// One JSON object per line ({"type": "counter", "name": ..., ...}), the
  /// format the --metrics-out run reports embed.
  void write_jsonl(std::ostream& out) const;

  /// Zeroes every registered metric (names stay registered).  Meant for
  /// tests and between-run boundaries, not concurrent use.
  void reset();

 private:
  mutable std::mutex mutex_;
  // node-based maps: metric addresses must survive later registrations.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The process-wide registry every layer records into.
MetricsRegistry& metrics();

}  // namespace tpa::obs
