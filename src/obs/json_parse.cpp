#include "obs/json_parse.hpp"

#include <cstdlib>
#include <stdexcept>

namespace tpa::obs {

namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.string = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return value;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return value;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return value;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    // strtod needs NUL termination; the token is tiny, so copy it.
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = parsed;
    return value;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (peek() != '\\') fail("lone high surrogate");
            ++pos_;
            if (peek() != 'u') fail("lone high surrogate");
            ++pos_;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

}  // namespace tpa::obs
