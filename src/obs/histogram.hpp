// Power-of-two-bucket histogram, generalised out of serve/metrics so every
// subsystem (serving latency, batch sizes, epoch times) records into the same
// type.  Recording is one relaxed atomic increment — request threads, batch
// workers and solver threads never contend on a lock.
//
// Quantile contract: bucket b counts values in [2^b, 2^(b+1)); a reported
// quantile is the *upper edge* of the bucket holding the target rank, i.e.
// exact to within one 2x bucket.  Values below 2 land in bucket 0 (edge 2),
// values at or beyond 2^31 land in the overflow bucket (edge 2^32).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace tpa::obs {

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  /// Records one sample.  Unit-agnostic: callers pick the tick (the serving
  /// wrapper records microseconds).  Negative values count as bucket 0.
  void record(double value) noexcept;

  std::uint64_t total_count() const noexcept;

  /// Value at quantile q in [0, 1]: upper edge of the bucket containing
  /// rank max(1, ceil(q * count)) — so quantile(0) is the smallest occupied
  /// bucket's edge, never an empty leading bucket.  Returns 0 when empty.
  double quantile(double q) const noexcept;

  /// Zeroes every bucket.  Not atomic with respect to concurrent record()
  /// calls: samples racing with a reset land on either side of it.
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

}  // namespace tpa::obs
