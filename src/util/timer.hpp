// Wall-clock timing.  All solvers report both real elapsed time (from
// WallTimer) and simulated time (from the hardware timing models); benches
// make clear which is which.
#pragma once

#include <chrono>

namespace tpa::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    const auto now = Clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the elapsed lifetime of the scope to `*sink` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (sink_ != nullptr) *sink_ += timer_.seconds();
  }

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace tpa::util
