#include "util/permutation.hpp"

#include <numeric>

namespace tpa::util {

std::vector<std::uint32_t> identity_permutation(std::size_t n) {
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  return order;
}

void shuffle(std::span<std::uint32_t> values, Rng& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_index(i));
    std::swap(values[i - 1], values[j]);
  }
}

std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng) {
  auto order = identity_permutation(n);
  shuffle(order, rng);
  return order;
}

bool is_permutation(std::span<const std::uint32_t> values) {
  std::vector<bool> seen(values.size(), false);
  for (const auto v : values) {
    if (v >= values.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

EpochPermutation::EpochPermutation(std::size_t n, Rng rng)
    : order_(identity_permutation(n)), rng_(rng) {}

std::span<const std::uint32_t> EpochPermutation::next() {
  shuffle(order_, rng_);
  return order_;
}

void EpochPermutation::skip(int epochs) {
  for (int i = 0; i < epochs; ++i) shuffle(order_, rng_);
}

}  // namespace tpa::util
