#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace tpa::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

std::vector<std::size_t> histogram(std::span<const double> values,
                                   std::size_t bins) {
  std::vector<std::size_t> counts(bins, 0);
  if (values.empty() || bins == 0) return counts;
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  const double width = hi > lo ? (hi - lo) / static_cast<double>(bins) : 1.0;
  for (const double v : values) {
    auto idx = static_cast<std::size_t>((v - lo) / width);
    if (idx >= bins) idx = bins - 1;
    ++counts[idx];
  }
  return counts;
}

}  // namespace tpa::util
