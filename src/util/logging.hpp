// Minimal leveled logging.  Libraries log sparingly (warnings and above);
// benches and examples raise the level for progress reporting.
#pragma once

#include <sstream>
#include <string>

namespace tpa::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level() noexcept;

/// Emits one line to stderr with a level tag.  Thread-safe.
void log_message(LogLevel level, const std::string& message);

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive); returns
/// kInfo for unknown strings, emitting a one-time warning naming the value.
LogLevel parse_log_level(const std::string& name);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace tpa::util

#define TPA_LOG(level)                              \
  if (static_cast<int>(level) <                     \
      static_cast<int>(::tpa::util::log_level())) { \
  } else                                            \
    ::tpa::util::detail::LogLine(level)

#define TPA_LOG_DEBUG TPA_LOG(::tpa::util::LogLevel::kDebug)
#define TPA_LOG_INFO TPA_LOG(::tpa::util::LogLevel::kInfo)
#define TPA_LOG_WARN TPA_LOG(::tpa::util::LogLevel::kWarn)
#define TPA_LOG_ERROR TPA_LOG(::tpa::util::LogLevel::kError)
