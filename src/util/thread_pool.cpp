#include "util/thread_pool.hpp"

#include <algorithm>

namespace tpa::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t count = std::max<std::size_t>(1, num_threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_chunks(
      count,
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      grain);
}

void ThreadPool::parallel_for_chunks(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (count == 0) return;
  if (grain == 0) grain = (count + size() - 1) / size();
  grain = std::max<std::size_t>(1, grain);
  if (grain >= count) {
    // One chunk: run inline, skipping the queue entirely.
    fn(0, count);
    return;
  }
  for (std::size_t begin = 0; begin < count; begin += grain) {
    const std::size_t end = std::min(begin + grain, count);
    submit([&fn, begin, end] { fn(begin, end); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace tpa::util
