#include "util/thread_pool.hpp"

#include <algorithm>

namespace tpa::util {
namespace {

// One iteration of a polite busy-wait: de-pipelines the spin loop so a
// hyperthread sibling (or, under TSan, the scheduler) gets the core.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace

std::size_t ThreadPool::default_spin_iterations() noexcept {
  // A futex sleep + wake costs a few microseconds; ~2048 pause iterations
  // covers that window.  With one hardware thread the spinner and the
  // thread it waits for share the core, so any spin is pure loss.
  return std::thread::hardware_concurrency() > 1 ? 2048 : 0;
}

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t spin_iterations)
    : spin_iterations_(spin_iterations) {
  const std::size_t count = std::max<std::size_t>(1, num_threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_.store(true, std::memory_order_relaxed);
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    pending_.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  // Spin first: a parallel_for round on a warm pool finishes in the time a
  // futex sleep would take to even park.  The acquire load pairs with the
  // workers' release decrement, so task side effects are visible on return.
  for (std::size_t spin = 0; spin < spin_iterations_; ++spin) {
    if (in_flight_.load(std::memory_order_acquire) == 0) return;
    cpu_pause();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_chunks(
      count,
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      grain);
}

void ThreadPool::parallel_for_chunks(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (count == 0) return;
  if (grain == 0) grain = (count + size() - 1) / size();
  grain = std::max<std::size_t>(1, grain);
  if (grain >= count) {
    // One chunk: run inline, skipping the queue entirely.
    fn(0, count);
    return;
  }
  for (std::size_t begin = 0; begin < count; begin += grain) {
    const std::size_t end = std::min(begin + grain, count);
    submit([&fn, begin, end] { fn(begin, end); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    // Bounded spin before parking: watch the pending counter with plain
    // atomic loads — no mutex traffic — and fall through to the condition
    // variable only when no work shows up within the budget.
    for (std::size_t spin = 0; spin < spin_iterations_; ++spin) {
      if (pending_.load(std::memory_order_relaxed) > 0 ||
          shutting_down_.load(std::memory_order_relaxed)) {
        break;
      }
      cpu_pause();
    }
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] {
        return shutting_down_.load(std::memory_order_relaxed) ||
               !queue_.empty();
      });
      if (queue_.empty()) {
        if (shutting_down_.load(std::memory_order_relaxed)) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
    }
    task();
    // Release pairs with wait_idle's acquire.  The last finisher takes the
    // mutex before notifying so a waiter that just checked the predicate
    // and is entering wait cannot miss the wake.
    if (in_flight_.fetch_sub(1, std::memory_order_release) == 1) {
      const std::lock_guard<std::mutex> lock(mutex_);
      all_idle_.notify_all();
    }
  }
}

}  // namespace tpa::util
