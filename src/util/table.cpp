#include "util/table.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace tpa::util {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void Table::begin_row() { rows_.emplace_back(); }

void Table::add_cell(std::string text) {
  assert(!rows_.empty());
  assert(rows_.back().size() < columns_.size());
  rows_.back().push_back(std::move(text));
}

void Table::add_number(double value) { add_cell(format_number(value)); }

void Table::add_integer(std::int64_t value) {
  add_cell(std::to_string(value));
}

std::string Table::format_number(double value) {
  char buf[48];
  const double mag = std::abs(value);
  if (value == 0.0) {
    return "0";
  }
  if (mag >= 1e-3 && mag < 1e5) {
    std::snprintf(buf, sizeof(buf), "%.4g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3e", value);
  }
  return buf;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << cell;
      if (c + 1 < columns_.size()) {
        out << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out << ',';
      if (c < cells.size()) out << cells[c];
    }
    out << '\n';
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace tpa::util
