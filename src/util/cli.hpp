// Small command-line argument parser for benches and examples.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms, typed
// accessors with defaults, required options, and generated --help text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tpa::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declares an option (for --help).  `default_text` is shown to the user;
  /// it does not set a value.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_text = "");
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv.  Returns false (and prints usage) on unknown options,
  /// missing values, or --help.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Positional arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the usage/help text.
  std::string usage() const;

 private:
  struct Spec {
    std::string name;
    std::string help;
    std::string default_text;
    bool is_flag = false;
  };

  const Spec* find_spec(const std::string& name) const;
  std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Spec> specs_;
  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::string> positional_;
};

}  // namespace tpa::util
