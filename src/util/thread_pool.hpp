// Fixed-size thread pool used by the real-threaded variants of the
// asynchronous CPU solvers (A-SCD / PASSCoDe-Wild / replicated) and the
// pooled objective/gap passes.  The deterministic interleaved engine in
// core/ is the default for experiments; this pool lets the same solvers
// also run on genuine hardware threads.
//
// Wakeup is spin-then-park: a worker that runs out of work spins on an
// atomic pending-task counter for a bounded number of pause iterations
// before blocking on the condition variable.  Solver epochs dispatch many
// short rounds back to back (one per merge interval), and the futex
// sleep/wake round trip of an immediate park costs more than the round
// itself; the bounded spin lets a worker catch the next round's tasks
// while still hot, and parks (so the pool never burns CPU while idle) when
// no work arrives within the budget.  wait_idle has the matching caller
// side: a bounded spin on the in-flight counter, then the condition
// variable.  On a single-core host the spin budget defaults to zero —
// spinning there only steals cycles from the one core that could be doing
// the work.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpa::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).  `spin_iterations` bounds
  /// the pause-loop a hungry worker (or wait_idle caller) runs before
  /// parking on the condition variable.
  explicit ThreadPool(std::size_t num_threads,
                      std::size_t spin_iterations = default_spin_iterations());
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::size_t size() const noexcept { return workers_.size(); }
  std::size_t spin_iterations() const noexcept { return spin_iterations_; }

  /// Spin budget picked for this host: zero when there is a single hardware
  /// thread (a spinner would preempt the worker it waits for), a few
  /// thousand pause iterations (~ the cost of one futex round trip)
  /// otherwise.
  static std::size_t default_spin_iterations() noexcept;

  /// Enqueues a task.  Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.  All memory
  /// effects of the tasks are visible once it returns.
  void wait_idle();

  /// Runs fn(i) for i in [0, count) across the pool and waits.
  ///
  /// Indices are scheduled in contiguous chunks of `grain` so each enqueued
  /// task (and its mutex round-trip) amortises over many iterations.  A grain
  /// of 0 picks ceil(count / workers) — one task per worker — which is the
  /// right default for uniform per-index cost; pass a smaller grain for
  /// skewed workloads, or 1 to recover the legacy task-per-index behaviour.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Chunked variant: runs fn(begin, end) over disjoint ranges covering
  /// [0, count) and waits.  Grain semantics as above.  This is the zero-per-
  /// index-overhead building block `parallel_for` wraps.
  void parallel_for_chunks(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  // pending_ counts queued-but-unclaimed tasks; in_flight_ counts queued +
  // executing.  Both are written under no lock so spinners can watch them
  // with plain atomic loads; the queue itself is still mutex-protected.
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<bool> shutting_down_{false};
  std::size_t spin_iterations_;
};

}  // namespace tpa::util
