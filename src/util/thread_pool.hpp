// Fixed-size thread pool used by the real-threaded variants of the
// asynchronous CPU solvers (A-SCD / PASSCoDe-Wild).  The deterministic
// interleaved engine in core/ is the default for experiments; this pool lets
// the same solvers also run on genuine hardware threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpa::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task.  Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Runs fn(i) for i in [0, count) across the pool and waits.
  ///
  /// Indices are scheduled in contiguous chunks of `grain` so each enqueued
  /// task (and its mutex round-trip) amortises over many iterations.  A grain
  /// of 0 picks ceil(count / workers) — one task per worker — which is the
  /// right default for uniform per-index cost; pass a smaller grain for
  /// skewed workloads, or 1 to recover the legacy task-per-index behaviour.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Chunked variant: runs fn(begin, end) over disjoint ranges covering
  /// [0, count) and waits.  Grain semantics as above.  This is the zero-per-
  /// index-overhead building block `parallel_for` wraps.
  void parallel_for_chunks(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace tpa::util
