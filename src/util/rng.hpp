// Deterministic pseudo-random number generation for the whole project.
//
// Every stochastic component (coordinate permutations, synthetic data,
// asynchronous interleaving schedules) draws from tpa::util::Rng so that a
// single seed reproduces an entire experiment bit-for-bit.  The generator is
// xoshiro256** (Blackman & Vigna), seeded through splitmix64 so that
// low-entropy seeds still yield well-mixed state.
#pragma once

#include <cstdint>
#include <limits>

namespace tpa::util {

/// Stateless seed mixer used to expand a 64-bit seed into generator state.
/// Advances the input state and returns the next mixed value.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator so it
/// can also be handed to <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound).  Requires bound > 0.  Uses Lemire's
  /// unbiased multiply-shift rejection method.
  std::uint64_t uniform_index(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller; caches the second variate.
  double normal() noexcept;

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Exponential variate with the given rate (rate > 0).
  double exponential(double rate) noexcept;

  /// Zipf-like variate on {0, ..., n-1} with exponent s > 0: index k is drawn
  /// with probability proportional to 1/(k+1)^s.  Uses rejection-inversion
  /// so that construction is O(1) per draw regardless of n.
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Creates an independent stream: a new generator seeded from this one.
  /// Useful to give each simulated worker / thread block its own RNG.
  Rng split() noexcept;

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tpa::util
