#include "util/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>

namespace tpa::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_io_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    log_message(LogLevel::kWarn,
                "unknown log level \"" + name + "\"; defaulting to info");
  }
  return LogLevel::kInfo;
}

}  // namespace tpa::util
