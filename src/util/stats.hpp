// Streaming and batch descriptive statistics used by dataset generators,
// matrix summaries and bench reporting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tpa::util {

/// Welford streaming accumulator: numerically stable mean / variance along
/// with min / max, without storing the samples.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (q in [0, 1]) of `values` by linear interpolation
/// between order statistics.  Copies and sorts internally; empty input -> 0.
double quantile(std::span<const double> values, double q);

/// Convenience: median of `values`.
double median(std::span<const double> values);

/// Builds a histogram of `values` with `bins` equal-width buckets over
/// [min, max]; returns per-bucket counts.  Empty input -> all-zero counts.
std::vector<std::size_t> histogram(std::span<const double> values,
                                   std::size_t bins);

}  // namespace tpa::util
