// Random permutations.  Stochastic coordinate descent visits coordinates in a
// freshly shuffled order each epoch (Algorithm 1 of the paper); this header
// provides the deterministic Fisher-Yates machinery used everywhere.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace tpa::util {

/// Returns the identity permutation [0, 1, ..., n-1].
std::vector<std::uint32_t> identity_permutation(std::size_t n);

/// Shuffles `values` in place with Fisher-Yates using `rng`.
void shuffle(std::span<std::uint32_t> values, Rng& rng);

/// Returns a uniformly random permutation of [0, n).
std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng);

/// True iff `values` is a permutation of [0, values.size()).
bool is_permutation(std::span<const std::uint32_t> values);

/// Reusable permutation buffer: avoids reallocating every epoch.  Call
/// `next()` to reshuffle in place and obtain a view of the new order.
class EpochPermutation {
 public:
  EpochPermutation(std::size_t n, Rng rng);

  /// Reshuffles and returns a view valid until the next call.
  std::span<const std::uint32_t> next();

  /// Advances the stream past `epochs` shuffles without exposing them.
  /// Used to realign a solver's permutation stream when resuming from a
  /// checkpoint: skip(k) followed by next() yields exactly what the
  /// (k+1)-th next() of a fresh stream would have.
  void skip(int epochs);

  std::size_t size() const noexcept { return order_.size(); }

 private:
  std::vector<std::uint32_t> order_;
  Rng rng_;
};

}  // namespace tpa::util
