#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace tpa::util {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64_next(sm);
  // xoshiro state must not be all-zero; splitmix64 cannot produce four zero
  // outputs in a row, so no further handling is required.
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [lo, hi]; fall back to raw output.
  if (span == 0) return static_cast<std::int64_t>((*this)());
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on (0,1] uniforms to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  assert(stddev >= 0.0);
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  assert(n > 0);
  assert(s > 0.0);
  if (n == 1) return 0;
  // Rejection-inversion sampling (Hörmann & Derflinger).  We sample a
  // continuous envelope of 1/x^s on [1, n+1) and accept with the ratio of the
  // discrete mass to the envelope.
  const double one_minus_s = 1.0 - s;
  auto h_integral = [&](double x) {
    // Integral of 1/t^s from 1 to x (log form when s == 1).
    if (std::abs(one_minus_s) < 1e-12) return std::log(x);
    return (std::pow(x, one_minus_s) - 1.0) / one_minus_s;
  };
  auto h_integral_inv = [&](double v) {
    if (std::abs(one_minus_s) < 1e-12) return std::exp(v);
    return std::pow(1.0 + v * one_minus_s, 1.0 / one_minus_s);
  };
  const double total = h_integral(static_cast<double>(n) + 1.0);
  for (;;) {
    const double u = uniform() * total;
    const double x = h_integral_inv(u);
    auto k = static_cast<std::uint64_t>(x);
    if (k < 1) k = 1;
    if (k > n) k = n;
    const double ratio =
        std::pow(static_cast<double>(k), -s) /
        std::pow(x, -s);  // discrete mass at k over envelope density at x
    if (uniform() <= ratio) return k - 1;
  }
}

Rng Rng::split() noexcept { return Rng((*this)()); }

}  // namespace tpa::util
