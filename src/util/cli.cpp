#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace tpa::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_text) {
  specs_.push_back(Spec{name, help, default_text, /*is_flag=*/false});
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  specs_.push_back(Spec{name, help, "", /*is_flag=*/true});
}

const ArgParser::Spec* ArgParser::find_spec(const std::string& name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline_value = true;
    }
    const Spec* spec = find_spec(name);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown option --%s\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    if (spec->is_flag) {
      values_.emplace_back(name, has_inline_value ? value : "true");
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option --%s expects a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    values_.emplace_back(name, std::move(value));
  }
  return true;
}

bool ArgParser::has(const std::string& name) const {
  return raw(name).has_value();
}

std::optional<std::string> ArgParser::raw(const std::string& name) const {
  // Last occurrence wins so that scripted callers can append overrides.
  std::optional<std::string> result;
  for (const auto& [key, value] : values_) {
    if (key == name) result = value;
  }
  return result;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto value = raw(name);
  return value.has_value() ? *value : fallback;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto value = raw(name);
  if (!value.has_value()) return fallback;
  try {
    return std::stoll(*value);
  } catch (const std::exception&) {
    std::fprintf(stderr, "option --%s: '%s' is not an integer; using %lld\n",
                 name.c_str(), value->c_str(),
                 static_cast<long long>(fallback));
    return fallback;
  }
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto value = raw(name);
  if (!value.has_value()) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    std::fprintf(stderr, "option --%s: '%s' is not a number; using %g\n",
                 name.c_str(), value->c_str(), fallback);
    return fallback;
  }
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto value = raw(name);
  if (!value.has_value()) return fallback;
  return *value == "true" || *value == "1" || *value == "yes" ||
         *value == "on" || value->empty();
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& spec : specs_) {
    out << "  --" << spec.name;
    if (!spec.is_flag) out << " <value>";
    out << "\n      " << spec.help;
    if (!spec.default_text.empty()) out << " (default: " << spec.default_text
                                        << ")";
    out << "\n";
  }
  out << "  --help\n      show this message\n";
  return out.str();
}

}  // namespace tpa::util
