// Aligned-column table output for bench harnesses: each figure reproduction
// prints its series both as a human-readable table and (optionally) CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tpa::util {

/// Collects rows of string cells under named columns, then renders either an
/// aligned text table or CSV.  Numeric helpers format with sensible
/// precision for convergence data (short scientific for small magnitudes).
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  std::size_t num_columns() const noexcept { return columns_.size(); }
  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Starts a new row; subsequent add_* calls fill it left to right.
  void begin_row();
  void add_cell(std::string text);
  void add_number(double value);
  void add_integer(std::int64_t value);

  /// Renders with padded columns to `out`.
  void print(std::ostream& out) const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our content) to `out`.
  void print_csv(std::ostream& out) const;

  /// Formats a double compactly: scientific for |v| outside [1e-3, 1e5).
  static std::string format_number(double value);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tpa::util
