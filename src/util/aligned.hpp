// 64-byte-aligned storage for dense hot-path buffers.
//
// The vectorized kernels (kernels.hpp) are written so the compiler can emit
// packed SIMD loads; cache-line alignment keeps those loads from straddling
// lines and lets the bucketed coordinate layout guarantee that every
// bucket's padded rows start on a fresh line.  AlignedVector is a drop-in
// std::vector whose data() is 64-byte aligned.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace tpa::util {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;

  static_assert(Alignment >= alignof(T));
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    // operator new with alignment handles the size round-up itself.
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector with 64-byte-aligned backing storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace tpa::util
