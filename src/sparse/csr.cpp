#include "sparse/csr.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace tpa::sparse {
namespace {

void validate_csr(Index rows, Index cols,
                  const std::vector<Offset>& row_offsets,
                  const std::vector<Index>& col_indices,
                  const std::vector<Value>& values) {
  if (row_offsets.size() != static_cast<std::size_t>(rows) + 1) {
    throw std::invalid_argument("CsrMatrix: row_offsets must have rows+1 entries");
  }
  if (col_indices.size() != values.size()) {
    throw std::invalid_argument("CsrMatrix: index/value length mismatch");
  }
  if (row_offsets.front() != 0 || row_offsets.back() != values.size()) {
    throw std::invalid_argument("CsrMatrix: offset range does not match nnz");
  }
  for (Index r = 0; r < rows; ++r) {
    if (row_offsets[r] > row_offsets[r + 1]) {
      throw std::invalid_argument("CsrMatrix: row_offsets must be non-decreasing");
    }
    Index prev = 0;
    bool first = true;
    for (Offset k = row_offsets[r]; k < row_offsets[r + 1]; ++k) {
      const Index c = col_indices[k];
      if (c >= cols) {
        throw std::invalid_argument("CsrMatrix: column index out of range");
      }
      if (!first && c <= prev) {
        throw std::invalid_argument(
            "CsrMatrix: column indices within a row must strictly increase");
      }
      prev = c;
      first = false;
    }
  }
}

}  // namespace

CsrMatrix::CsrMatrix(Index rows, Index cols, std::vector<Offset> row_offsets,
                     std::vector<Index> col_indices, std::vector<Value> values)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      values_(std::move(values)) {
  validate_csr(rows_, cols_, row_offsets_, col_indices_, values_);
}

std::size_t CsrMatrix::row_nnz(Index r) const {
  return static_cast<std::size_t>(row_offsets_[r + 1] - row_offsets_[r]);
}

SparseVectorView CsrMatrix::row(Index r) const {
  const auto begin = static_cast<std::size_t>(row_offsets_[r]);
  const auto count = row_nnz(r);
  return SparseVectorView{
      std::span<const Index>(col_indices_).subspan(begin, count),
      std::span<const Value>(values_).subspan(begin, count)};
}

std::vector<double> CsrMatrix::row_squared_norms(util::ThreadPool* pool) const {
  std::vector<double> norms(rows_, 0.0);
  const auto run_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      double acc = 0.0;
      for (Offset k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
        const double v = values_[k];
        acc += v * v;
      }
      norms[r] = acc;
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for_chunks(norms.size(), run_rows);
  } else {
    run_rows(0, norms.size());
  }
  return norms;
}

Value CsrMatrix::at(Index r, Index c) const {
  const auto view = row(r);
  const auto it = std::lower_bound(view.indices.begin(), view.indices.end(), c);
  if (it == view.indices.end() || *it != c) return 0.0F;
  const auto pos = static_cast<std::size_t>(it - view.indices.begin());
  return view.values[pos];
}

std::size_t CsrMatrix::memory_bytes() const noexcept {
  return row_offsets_.size() * sizeof(Offset) +
         col_indices_.size() * sizeof(Index) + values_.size() * sizeof(Value);
}

}  // namespace tpa::sparse
