// SVMLight / LIBSVM text format:  one example per line,
//   <label> <index>:<value> <index>:<value> ...
// with 1-based feature indices.  This is the interchange format in which the
// paper's datasets (webspam, criteo) are distributed, so users can point the
// library at real files when they have them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace tpa::sparse {

struct LabeledMatrix {
  CsrMatrix matrix;
  std::vector<float> labels;
};

/// Parses svmlight text from a stream.  `num_features` forces the column
/// count (0 = infer as max index seen).  Lines that are empty or start with
/// '#' are skipped.  Malformed entries throw std::runtime_error with the
/// line number.
LabeledMatrix read_svmlight(std::istream& in, Index num_features = 0);

/// Convenience file wrapper; throws std::runtime_error if unreadable.
LabeledMatrix read_svmlight_file(const std::string& path,
                                 Index num_features = 0);

/// Writes labels + matrix in svmlight format (1-based indices, %.7g values).
void write_svmlight(std::ostream& out, const CsrMatrix& matrix,
                    std::span<const float> labels);

void write_svmlight_file(const std::string& path, const CsrMatrix& matrix,
                         std::span<const float> labels);

}  // namespace tpa::sparse
