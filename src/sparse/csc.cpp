#include "sparse/csc.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace tpa::sparse {
namespace {

void validate_csc(Index rows, Index cols,
                  const std::vector<Offset>& col_offsets,
                  const std::vector<Index>& row_indices,
                  const std::vector<Value>& values) {
  if (col_offsets.size() != static_cast<std::size_t>(cols) + 1) {
    throw std::invalid_argument("CscMatrix: col_offsets must have cols+1 entries");
  }
  if (row_indices.size() != values.size()) {
    throw std::invalid_argument("CscMatrix: index/value length mismatch");
  }
  if (col_offsets.front() != 0 || col_offsets.back() != values.size()) {
    throw std::invalid_argument("CscMatrix: offset range does not match nnz");
  }
  for (Index c = 0; c < cols; ++c) {
    if (col_offsets[c] > col_offsets[c + 1]) {
      throw std::invalid_argument("CscMatrix: col_offsets must be non-decreasing");
    }
    Index prev = 0;
    bool first = true;
    for (Offset k = col_offsets[c]; k < col_offsets[c + 1]; ++k) {
      const Index r = row_indices[k];
      if (r >= rows) {
        throw std::invalid_argument("CscMatrix: row index out of range");
      }
      if (!first && r <= prev) {
        throw std::invalid_argument(
            "CscMatrix: row indices within a column must strictly increase");
      }
      prev = r;
      first = false;
    }
  }
}

}  // namespace

CscMatrix::CscMatrix(Index rows, Index cols, std::vector<Offset> col_offsets,
                     std::vector<Index> row_indices, std::vector<Value> values)
    : rows_(rows),
      cols_(cols),
      col_offsets_(std::move(col_offsets)),
      row_indices_(std::move(row_indices)),
      values_(std::move(values)) {
  validate_csc(rows_, cols_, col_offsets_, row_indices_, values_);
}

std::size_t CscMatrix::col_nnz(Index c) const {
  return static_cast<std::size_t>(col_offsets_[c + 1] - col_offsets_[c]);
}

SparseVectorView CscMatrix::col(Index c) const {
  const auto begin = static_cast<std::size_t>(col_offsets_[c]);
  const auto count = col_nnz(c);
  return SparseVectorView{
      std::span<const Index>(row_indices_).subspan(begin, count),
      std::span<const Value>(values_).subspan(begin, count)};
}

std::vector<double> CscMatrix::col_squared_norms(util::ThreadPool* pool) const {
  std::vector<double> norms(cols_, 0.0);
  const auto run_cols = [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      double acc = 0.0;
      for (Offset k = col_offsets_[c]; k < col_offsets_[c + 1]; ++k) {
        const double v = values_[k];
        acc += v * v;
      }
      norms[c] = acc;
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for_chunks(norms.size(), run_cols);
  } else {
    run_cols(0, norms.size());
  }
  return norms;
}

Value CscMatrix::at(Index r, Index c) const {
  const auto view = col(c);
  const auto it = std::lower_bound(view.indices.begin(), view.indices.end(), r);
  if (it == view.indices.end() || *it != r) return 0.0F;
  const auto pos = static_cast<std::size_t>(it - view.indices.begin());
  return view.values[pos];
}

std::size_t CscMatrix::memory_bytes() const noexcept {
  return col_offsets_.size() * sizeof(Offset) +
         row_indices_.size() * sizeof(Index) + values_.size() * sizeof(Value);
}

}  // namespace tpa::sparse
