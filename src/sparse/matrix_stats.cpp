#include "sparse/matrix_stats.hpp"

#include <ostream>
#include <sstream>
#include <vector>

namespace tpa::sparse {

MatrixStats compute_stats(const CsrMatrix& matrix) {
  MatrixStats stats;
  stats.rows = matrix.rows();
  stats.cols = matrix.cols();
  stats.nnz = matrix.nnz();
  const double cells = static_cast<double>(matrix.rows()) *
                       static_cast<double>(matrix.cols());
  stats.density = cells > 0 ? static_cast<double>(matrix.nnz()) / cells : 0.0;

  std::vector<bool> col_seen(matrix.cols(), false);
  for (Index r = 0; r < matrix.rows(); ++r) {
    const auto count = matrix.row_nnz(r);
    stats.row_nnz.add(static_cast<double>(count));
    if (count == 0) ++stats.empty_rows;
    const auto view = matrix.row(r);
    for (const auto c : view.indices) col_seen[c] = true;
  }
  for (Index c = 0; c < matrix.cols(); ++c) {
    if (col_seen[c]) ++stats.populated_cols;
  }

  // Footprints assume the 32-bit value / 32-bit index layout of the paper's
  // GPU implementation plus one offset array for the compressed dimension.
  const std::size_t per_entry = sizeof(Value) + sizeof(Index);
  stats.csr_bytes = static_cast<std::size_t>(matrix.nnz()) * per_entry +
                    (static_cast<std::size_t>(matrix.rows()) + 1) *
                        sizeof(Offset);
  stats.csc_bytes = static_cast<std::size_t>(matrix.nnz()) * per_entry +
                    (static_cast<std::size_t>(matrix.cols()) + 1) *
                        sizeof(Offset);
  return stats;
}

std::string MatrixStats::summary() const {
  std::ostringstream out;
  out << rows << " x " << cols << ", nnz=" << nnz << " (density "
      << density << "), nnz/row mean=" << row_nnz.mean()
      << " max=" << row_nnz.max() << ", csr=" << csr_bytes / (1024.0 * 1024.0)
      << " MiB";
  return out.str();
}

std::ostream& operator<<(std::ostream& out, const MatrixStats& stats) {
  return out << stats.summary();
}

}  // namespace tpa::sparse
