// Coordinate-format builder: the mutable staging area from which the
// compressed formats (CSR for row access, CSC for column access) are built.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace tpa::sparse {

class CooBuilder {
 public:
  /// Creates a builder for a rows x cols matrix.
  CooBuilder(Index rows, Index cols);

  Index rows() const noexcept { return rows_; }
  Index cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return entries_.size(); }
  std::span<const Triplet> entries() const noexcept { return entries_; }

  void reserve(std::size_t nnz) { entries_.reserve(nnz); }

  /// Appends one entry.  Out-of-range coordinates are a programming error
  /// (checked by assert); duplicate coordinates are allowed and are summed
  /// by `coalesce()` or during conversion.
  void add(Index row, Index col, Value value);

  /// Sorts entries by (row, col) and sums duplicates; drops exact zeros that
  /// result from cancellation.
  void coalesce();

  /// Removes every stored entry but keeps the dimensions.
  void clear() { entries_.clear(); }

 private:
  Index rows_;
  Index cols_;
  std::vector<Triplet> entries_;
};

}  // namespace tpa::sparse
