#include "sparse/bucketed.hpp"

#include <algorithm>

namespace tpa::sparse {
namespace {

// 64 bytes of 4-byte entries: bucket starts are rounded to this so both the
// index and value slices of a bucket begin on a cache line.
constexpr std::size_t kAlignEntries = 16;

std::size_t nnz_class_of(std::size_t nnz) {
  std::size_t cls = 8;
  while (cls < nnz) cls *= 2;
  return cls;
}

std::size_t round_up(std::size_t n, std::size_t multiple) {
  return (n + multiple - 1) / multiple * multiple;
}

}  // namespace

template <typename SliceFn>
BucketedLayout BucketedLayout::build(Index count, Index dim,
                                     const SliceFn& slice) {
  BucketedLayout layout;
  layout.dim_ = dim;
  layout.slots_.resize(count);

  // Bucket-major order: ascending nnz class, ties by coordinate id (a stable
  // sort on the class keeps ids ascending within a bucket).
  layout.order_.resize(count);
  for (Index j = 0; j < count; ++j) layout.order_[j] = j;
  std::stable_sort(layout.order_.begin(), layout.order_.end(),
                   [&](Index a, Index b) {
                     return nnz_class_of(slice(a).nnz()) <
                            nnz_class_of(slice(b).nnz());
                   });

  // Lay out slots bucket by bucket: each bucket starts on a cache line, each
  // slot is padded to a multiple of 8 entries (empty coordinates get width
  // 0 so their views stay empty, exactly like the source matrix's).
  std::size_t offset = 0;
  std::size_t at = 0;
  while (at < layout.order_.size()) {
    const std::size_t cls = nnz_class_of(slice(layout.order_[at]).nnz());
    offset = round_up(offset, kAlignEntries);
    Bucket bucket;
    bucket.nnz_class = cls;
    bucket.begin = at;
    while (at < layout.order_.size() &&
           nnz_class_of(slice(layout.order_[at]).nnz()) == cls) {
      const Index j = layout.order_[at];
      const std::size_t nnz = slice(j).nnz();
      Slot& slot = layout.slots_[j];
      slot.offset = offset;
      slot.nnz = static_cast<std::uint32_t>(nnz);
      slot.width =
          static_cast<std::uint32_t>(nnz == 0 ? 0 : round_up(nnz, 8));
      offset += slot.width;
      ++at;
    }
    bucket.count = at - bucket.begin;
    layout.buckets_.push_back(bucket);
  }

  layout.indices_.assign(offset, 0);
  layout.values_.assign(offset, 0.0F);
  for (Index j = 0; j < count; ++j) {
    const SparseVectorView view = slice(j);
    const Slot& slot = layout.slots_[j];
    std::copy(view.indices.begin(), view.indices.end(),
              layout.indices_.begin() + static_cast<std::ptrdiff_t>(slot.offset));
    std::copy(view.values.begin(), view.values.end(),
              layout.values_.begin() + static_cast<std::ptrdiff_t>(slot.offset));
    // Padding: repeat the last real index with value 0 so padded entries stay
    // within the coordinate's own touched set (no cross-coordinate aliasing
    // in scatter) and contribute exactly zero to reductions.
    if (slot.nnz > 0) {
      const Index last = view.indices.back();
      for (std::size_t k = slot.nnz; k < slot.width; ++k) {
        layout.indices_[slot.offset + k] = last;
      }
    }
  }
  return layout;
}

BucketedLayout BucketedLayout::from_rows(const CsrMatrix& m) {
  return build(m.rows(), m.cols(), [&](Index j) { return m.row(j); });
}

BucketedLayout BucketedLayout::from_cols(const CscMatrix& m) {
  return build(m.cols(), m.rows(), [&](Index j) { return m.col(j); });
}

}  // namespace tpa::sparse
