// Format-sniffing dataset loader shared by the CLI tools.
//
// Both tpascd_train and tpascd_serve accept either our ".bin" cache format
// or svmlight text; the extension decides which reader runs.
#pragma once

#include <string>

#include "sparse/io_svmlight.hpp"

namespace tpa::sparse {

/// Loads a labelled matrix from `path`: the ".bin" extension selects the
/// binary cache reader, anything else parses as svmlight text.
/// `num_features` forces the column count for svmlight (0 = infer); it is
/// ignored for binary files, which store their own shape.  Throws
/// std::runtime_error on unreadable or malformed files.
LabeledMatrix load_labeled_file(const std::string& path,
                                Index num_features = 0);

}  // namespace tpa::sparse
