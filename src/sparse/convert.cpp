#include "sparse/convert.hpp"

#include <stdexcept>

namespace tpa::sparse {
namespace {

/// Shared counting-sort core: scatters (major, minor, value) entries that are
/// provided via a generic visitor into compressed-major arrays.
struct CompressedArrays {
  std::vector<Offset> offsets;
  std::vector<Index> indices;
  std::vector<Value> values;
};

template <typename ForEachEntry>
CompressedArrays compress(Index major_dim, Offset nnz,
                          const ForEachEntry& for_each_entry) {
  CompressedArrays out;
  out.offsets.assign(static_cast<std::size_t>(major_dim) + 1, 0);
  out.indices.resize(nnz);
  out.values.resize(nnz);

  // Pass 1: counts per major index.
  for_each_entry([&](Index major, Index /*minor*/, Value /*v*/) {
    ++out.offsets[static_cast<std::size_t>(major) + 1];
  });
  for (std::size_t i = 1; i < out.offsets.size(); ++i) {
    out.offsets[i] += out.offsets[i - 1];
  }

  // Pass 2: scatter into place using a moving cursor per major index.
  std::vector<Offset> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for_each_entry([&](Index major, Index minor, Value v) {
    const Offset pos = cursor[major]++;
    out.indices[pos] = minor;
    out.values[pos] = v;
  });
  return out;
}

}  // namespace

CsrMatrix coo_to_csr(const CooBuilder& coo) {
  CooBuilder sorted = coo;
  sorted.coalesce();  // also sorts by (row, col), giving increasing columns
  auto arrays = compress(
      sorted.rows(), sorted.nnz(), [&](const auto& visit) {
        for (const auto& t : sorted.entries()) visit(t.row, t.col, t.value);
      });
  return CsrMatrix(sorted.rows(), sorted.cols(), std::move(arrays.offsets),
                   std::move(arrays.indices), std::move(arrays.values));
}

CscMatrix coo_to_csc(const CooBuilder& coo) {
  CooBuilder sorted = coo;
  sorted.coalesce();
  // Coalesce orders by (row, col); scattering by column preserves row order
  // within each column, so indices come out strictly increasing.
  auto arrays = compress(
      sorted.cols(), sorted.nnz(), [&](const auto& visit) {
        for (const auto& t : sorted.entries()) visit(t.col, t.row, t.value);
      });
  return CscMatrix(sorted.rows(), sorted.cols(), std::move(arrays.offsets),
                   std::move(arrays.indices), std::move(arrays.values));
}

CscMatrix csr_to_csc(const CsrMatrix& csr) {
  auto arrays = compress(
      csr.cols(), csr.nnz(), [&](const auto& visit) {
        for (Index r = 0; r < csr.rows(); ++r) {
          const auto view = csr.row(r);
          for (std::size_t k = 0; k < view.nnz(); ++k) {
            visit(view.indices[k], r, view.values[k]);
          }
        }
      });
  return CscMatrix(csr.rows(), csr.cols(), std::move(arrays.offsets),
                   std::move(arrays.indices), std::move(arrays.values));
}

CsrMatrix csc_to_csr(const CscMatrix& csc) {
  auto arrays = compress(
      csc.rows(), csc.nnz(), [&](const auto& visit) {
        for (Index c = 0; c < csc.cols(); ++c) {
          const auto view = csc.col(c);
          for (std::size_t k = 0; k < view.nnz(); ++k) {
            visit(view.indices[k], c, view.values[k]);
          }
        }
      });
  return CsrMatrix(csc.rows(), csc.cols(), std::move(arrays.offsets),
                   std::move(arrays.indices), std::move(arrays.values));
}

CsrMatrix transpose(const CsrMatrix& csr) {
  auto arrays = compress(
      csr.cols(), csr.nnz(), [&](const auto& visit) {
        for (Index r = 0; r < csr.rows(); ++r) {
          const auto view = csr.row(r);
          for (std::size_t k = 0; k < view.nnz(); ++k) {
            visit(view.indices[k], r, view.values[k]);
          }
        }
      });
  return CsrMatrix(csr.cols(), csr.rows(), std::move(arrays.offsets),
                   std::move(arrays.indices), std::move(arrays.values));
}

std::vector<double> to_dense(const CsrMatrix& csr) {
  const auto total = static_cast<std::size_t>(csr.rows()) *
                     static_cast<std::size_t>(csr.cols());
  if (total > (1ULL << 26)) {
    throw std::length_error("to_dense: matrix too large to densify");
  }
  std::vector<double> dense(total, 0.0);
  for (Index r = 0; r < csr.rows(); ++r) {
    const auto view = csr.row(r);
    for (std::size_t k = 0; k < view.nnz(); ++k) {
      dense[static_cast<std::size_t>(r) * csr.cols() + view.indices[k]] =
          view.values[k];
    }
  }
  return dense;
}

}  // namespace tpa::sparse
