// Bucketed coordinate layout (the SySCD bucket idea, Ioannou et al. 2019).
//
// CSR/CSC give each coordinate a tightly-packed slice, but the slices of
// consecutive coordinates start at arbitrary byte offsets and arbitrary
// lengths, so the unrolled kernels spend a remainder loop on almost every
// coordinate and short coordinates thrash the strided reduce of the TPA-SCD
// block body.  This layout re-materialises the per-coordinate slices:
//
//   - coordinates are grouped into *buckets* by nnz class (the next power of
//     two of their nnz, minimum 8), so same-shaped work is contiguous;
//   - each coordinate's slice is padded to a multiple of 8 entries — padding
//     repeats the coordinate's last index with value 0, which contributes
//     exactly 0.0 to every dot/residual kernel and adds ±0.0 in scatter —
//     so the 4/8-way unrolled kernels never execute a remainder iteration;
//   - bucket starts are rounded to 64-byte boundaries in both the index and
//     value arrays (AlignedVector backing), keeping packed loads inside
//     cache lines.
//
// `padded(j)` is what the solvers feed the kernels; `unpadded(j)` recovers
// the exact CSR/CSC view for code that must see true nnz.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "util/aligned.hpp"

namespace tpa::sparse {

class BucketedLayout {
 public:
  BucketedLayout() = default;

  /// Buckets the rows of a CSR matrix (dual-formulation coordinates).
  static BucketedLayout from_rows(const CsrMatrix& m);
  /// Buckets the columns of a CSC matrix (primal-formulation coordinates).
  static BucketedLayout from_cols(const CscMatrix& m);

  /// Number of coordinates (rows resp. columns of the source matrix).
  Index count() const noexcept { return static_cast<Index>(slots_.size()); }
  /// Dimension of the dense vector the coordinates index into.
  Index dim() const noexcept { return dim_; }
  bool empty() const noexcept { return slots_.empty(); }

  /// Zero-padded view of coordinate j: width_of(j) entries, the first
  /// nnz_of(j) of which are the source slice.  Safe for every kernel.
  SparseVectorView padded(Index j) const {
    const Slot& s = slots_[j];
    return SparseVectorView{
        std::span<const Index>(indices_).subspan(s.offset, s.width),
        std::span<const Value>(values_).subspan(s.offset, s.width)};
  }

  /// Exact source slice of coordinate j (no padding).
  SparseVectorView unpadded(Index j) const {
    const Slot& s = slots_[j];
    return SparseVectorView{
        std::span<const Index>(indices_).subspan(s.offset, s.nnz),
        std::span<const Value>(values_).subspan(s.offset, s.nnz)};
  }

  std::size_t nnz_of(Index j) const { return slots_[j].nnz; }
  std::size_t width_of(Index j) const { return slots_[j].width; }

  /// Buckets, ordered by ascending nnz class.
  int num_buckets() const noexcept { return static_cast<int>(buckets_.size()); }
  /// The nnz class (power-of-two upper bound) of bucket b.
  std::size_t bucket_class(int b) const { return buckets_[b].nnz_class; }
  /// Coordinate ids stored in bucket b, in storage order — iterating these
  /// walks the index/value arrays sequentially.
  std::span<const Index> bucket_coords(int b) const {
    const Bucket& bucket = buckets_[b];
    return std::span<const Index>(order_).subspan(bucket.begin,
                                                  bucket.count);
  }

  /// Total padded entries (>= source nnz; the padding overhead).
  std::size_t padded_nnz() const noexcept { return indices_.size(); }

  std::size_t memory_bytes() const noexcept {
    return indices_.size() * sizeof(Index) + values_.size() * sizeof(Value) +
           slots_.size() * sizeof(Slot) + order_.size() * sizeof(Index);
  }

 private:
  struct Slot {
    std::size_t offset = 0;   // into indices_/values_
    std::uint32_t nnz = 0;    // true entries
    std::uint32_t width = 0;  // padded entries (multiple of 8, 0 if nnz == 0)
  };
  struct Bucket {
    std::size_t nnz_class = 0;  // coordinates with nnz in (class/2, class]
    std::size_t begin = 0;      // into order_
    std::size_t count = 0;
  };

  /// Shared builder: `slice(j)` yields coordinate j's source view.
  template <typename SliceFn>
  static BucketedLayout build(Index count, Index dim, const SliceFn& slice);

  std::vector<Slot> slots_;
  std::vector<Bucket> buckets_;
  std::vector<Index> order_;  // coordinate ids in bucket-major storage order
  util::AlignedVector<Index> indices_;
  util::AlignedVector<Value> values_;
  Index dim_ = 0;
};

}  // namespace tpa::sparse
