#include "sparse/io_binary.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace tpa::sparse {
namespace {

constexpr char kMagic[4] = {'T', 'P', 'A', '1'};

struct Header {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t nnz = 0;
  std::uint64_t labels = 0;
};

void write_raw(std::ostream& out, const void* data, std::size_t bytes,
               std::uint64_t& checksum) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("binary write failed");
  checksum = fnv1a(data, bytes, checksum);
}

void read_raw(std::istream& in, void* data, std::size_t bytes,
              std::uint64_t& checksum) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    throw std::runtime_error("binary read truncated");
  }
  checksum = fnv1a(data, bytes, checksum);
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* bytes_ptr = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= bytes_ptr[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void write_binary(std::ostream& out, const LabeledMatrix& data) {
  out.write(kMagic, sizeof(kMagic));
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  const Header header{data.matrix.rows(), data.matrix.cols(),
                      data.matrix.nnz(), data.labels.size()};
  write_raw(out, &header, sizeof(header), checksum);
  write_raw(out, data.matrix.row_offsets().data(),
            data.matrix.row_offsets().size() * sizeof(Offset), checksum);
  write_raw(out, data.matrix.col_indices().data(),
            data.matrix.col_indices().size() * sizeof(Index), checksum);
  write_raw(out, data.matrix.values().data(),
            data.matrix.values().size() * sizeof(Value), checksum);
  write_raw(out, data.labels.data(), data.labels.size() * sizeof(float),
            checksum);
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) throw std::runtime_error("binary write failed");
}

void write_binary_file(const std::string& path, const LabeledMatrix& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_binary(out, data);
}

LabeledMatrix read_binary(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("binary read: bad magic");
  }
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  Header header;
  read_raw(in, &header, sizeof(header), checksum);

  std::vector<Offset> offsets(header.rows + 1);
  std::vector<Index> indices(header.nnz);
  std::vector<Value> values(header.nnz);
  std::vector<float> labels(header.labels);
  read_raw(in, offsets.data(), offsets.size() * sizeof(Offset), checksum);
  read_raw(in, indices.data(), indices.size() * sizeof(Index), checksum);
  read_raw(in, values.data(), values.size() * sizeof(Value), checksum);
  read_raw(in, labels.data(), labels.size() * sizeof(float), checksum);

  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(stored)) {
    throw std::runtime_error("binary read truncated (checksum)");
  }
  if (stored != checksum) {
    throw std::runtime_error("binary read: checksum mismatch");
  }
  return LabeledMatrix{
      CsrMatrix(static_cast<Index>(header.rows),
                static_cast<Index>(header.cols), std::move(offsets),
                std::move(indices), std::move(values)),
      std::move(labels)};
}

LabeledMatrix read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_binary(in);
}

}  // namespace tpa::sparse
