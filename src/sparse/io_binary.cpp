#include "sparse/io_binary.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace tpa::sparse {
namespace {

constexpr char kMagic[4] = {'T', 'P', 'A', '1'};

void write_raw(std::ostream& out, const void* data, std::size_t bytes,
               Fnv1a& checksum) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("binary write failed");
  checksum.update(data, bytes);
}

void read_raw(std::istream& in, void* data, std::size_t bytes,
              Fnv1a& checksum) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    throw std::runtime_error("binary read truncated");
  }
  checksum.update(data, bytes);
}

LabeledMatrix assemble(const BinaryHeader& header, std::vector<Offset> offsets,
                       std::vector<Index> indices, std::vector<Value> values,
                       std::vector<float> labels) {
  return LabeledMatrix{
      CsrMatrix(static_cast<Index>(header.rows),
                static_cast<Index>(header.cols), std::move(offsets),
                std::move(indices), std::move(values)),
      std::move(labels)};
}

}  // namespace

void Fnv1a::update(const void* data, std::size_t bytes) noexcept {
  const auto* bytes_ptr = static_cast<const unsigned char*>(data);
  std::uint64_t hash = hash_;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= bytes_ptr[i];
    hash *= 0x100000001b3ULL;
  }
  hash_ = hash;
}

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  Fnv1a acc(seed);
  acc.update(data, bytes);
  return acc.digest();
}

std::uint64_t BinaryHeader::payload_bytes() const noexcept {
  return (rows + 1) * sizeof(Offset) + nnz * (sizeof(Index) + sizeof(Value)) +
         labels * sizeof(float);
}

std::uint64_t BinaryHeader::file_bytes() const noexcept {
  return sizeof(kMagic) + sizeof(BinaryHeader) + payload_bytes() +
         sizeof(std::uint64_t);
}

void write_binary(std::ostream& out, const LabeledMatrix& data) {
  out.write(kMagic, sizeof(kMagic));
  Fnv1a checksum;
  const BinaryHeader header{data.matrix.rows(), data.matrix.cols(),
                            data.matrix.nnz(), data.labels.size()};
  write_raw(out, &header, sizeof(header), checksum);
  write_raw(out, data.matrix.row_offsets().data(),
            data.matrix.row_offsets().size() * sizeof(Offset), checksum);
  write_raw(out, data.matrix.col_indices().data(),
            data.matrix.col_indices().size() * sizeof(Index), checksum);
  write_raw(out, data.matrix.values().data(),
            data.matrix.values().size() * sizeof(Value), checksum);
  write_raw(out, data.labels.data(), data.labels.size() * sizeof(float),
            checksum);
  const std::uint64_t digest = checksum.digest();
  out.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
  if (!out) throw std::runtime_error("binary write failed");
}

void write_binary_file(const std::string& path, const LabeledMatrix& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_binary(out, data);
}

BinaryHeader read_binary_header(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("binary read: bad magic");
  }
  BinaryHeader header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(header)) {
    throw std::runtime_error("binary read truncated (header)");
  }
  return header;
}

BinaryHeader read_binary_header_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_binary_header(in);
}

BinaryHeader read_binary_header(const void* data, std::size_t size) {
  if (size < sizeof(kMagic) + sizeof(BinaryHeader) ||
      std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("binary read: bad magic");
  }
  BinaryHeader header;
  std::memcpy(&header, static_cast<const char*>(data) + sizeof(kMagic),
              sizeof(header));
  return header;
}

LabeledMatrix read_binary(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("binary read: bad magic");
  }
  Fnv1a checksum;
  BinaryHeader header;
  read_raw(in, &header, sizeof(header), checksum);

  std::vector<Offset> offsets(header.rows + 1);
  std::vector<Index> indices(header.nnz);
  std::vector<Value> values(header.nnz);
  std::vector<float> labels(header.labels);
  read_raw(in, offsets.data(), offsets.size() * sizeof(Offset), checksum);
  read_raw(in, indices.data(), indices.size() * sizeof(Index), checksum);
  read_raw(in, values.data(), values.size() * sizeof(Value), checksum);
  read_raw(in, labels.data(), labels.size() * sizeof(float), checksum);

  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(stored)) {
    throw std::runtime_error("binary read truncated (checksum)");
  }
  if (stored != checksum.digest()) {
    throw std::runtime_error("binary read: checksum mismatch");
  }
  return assemble(header, std::move(offsets), std::move(indices),
                  std::move(values), std::move(labels));
}

LabeledMatrix read_binary(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const BinaryHeader header = read_binary_header(data, size);
  if (header.file_bytes() != size) {
    throw std::runtime_error("binary read truncated (payload)");
  }
  const unsigned char* cursor = bytes + sizeof(kMagic) + sizeof(header);

  std::vector<Offset> offsets(header.rows + 1);
  std::vector<Index> indices(header.nnz);
  std::vector<Value> values(header.nnz);
  std::vector<float> labels(header.labels);
  const auto take = [&cursor](void* dst, std::size_t n) {
    std::memcpy(dst, cursor, n);
    cursor += n;
  };
  take(offsets.data(), offsets.size() * sizeof(Offset));
  take(indices.data(), indices.size() * sizeof(Index));
  take(values.data(), values.size() * sizeof(Value));
  take(labels.data(), labels.size() * sizeof(float));

  std::uint64_t stored = 0;
  std::memcpy(&stored, cursor, sizeof(stored));
  // One pass over the mapped image, exactly the bytes the stream reader
  // would have folded in.
  const std::uint64_t computed =
      fnv1a(bytes + sizeof(kMagic),
            sizeof(header) + header.payload_bytes());
  if (stored != computed) {
    throw std::runtime_error("binary read: checksum mismatch");
  }
  return assemble(header, std::move(offsets), std::move(indices),
                  std::move(values), std::move(labels));
}

LabeledMatrix read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_binary(in);
}

}  // namespace tpa::sparse
