// Compressed sparse row matrix.
//
// CSR gives O(1) access to a training example's feature vector (a row ā_n of
// A) and is the layout the paper uses on the GPU when solving the dual
// formulation of ridge regression.
#pragma once

#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace tpa::util {
class ThreadPool;
}

namespace tpa::sparse {

/// Immutable view of one sparse vector: parallel index / value spans.
struct SparseVectorView {
  std::span<const Index> indices;
  std::span<const Value> values;

  std::size_t nnz() const noexcept { return indices.size(); }
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Takes ownership of raw CSR arrays.  `row_offsets` has rows+1 entries,
  /// monotonically non-decreasing, with row_offsets.back() == nnz.  Column
  /// indices within a row must be strictly increasing and < cols.
  /// Violations throw std::invalid_argument.
  CsrMatrix(Index rows, Index cols, std::vector<Offset> row_offsets,
            std::vector<Index> col_indices, std::vector<Value> values);

  Index rows() const noexcept { return rows_; }
  Index cols() const noexcept { return cols_; }
  Offset nnz() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  std::span<const Offset> row_offsets() const noexcept { return row_offsets_; }
  std::span<const Index> col_indices() const noexcept { return col_indices_; }
  std::span<const Value> values() const noexcept { return values_; }

  /// Number of stored entries in row r.
  std::size_t row_nnz(Index r) const;

  /// View of row r's indices and values.
  SparseVectorView row(Index r) const;

  /// Squared L2 norm of every row, accumulated in double:  ||ā_n||².
  /// Rows are independent, so a non-null `pool` computes them in contiguous
  /// chunks — identical results, and the one-time precompute stops
  /// dominating small-epoch runs on wide datasets.
  std::vector<double> row_squared_norms(util::ThreadPool* pool = nullptr) const;

  /// Dense value lookup (binary search within the row); 0 if absent.
  Value at(Index r, Index c) const;

  /// Estimated memory footprint in bytes (offsets + indices + values).
  std::size_t memory_bytes() const noexcept;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Offset> row_offsets_{0};
  std::vector<Index> col_indices_;
  std::vector<Value> values_;
};

}  // namespace tpa::sparse
