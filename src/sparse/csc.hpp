// Compressed sparse column matrix.
//
// CSC gives O(1) access to a feature column a_m of A and is the layout the
// paper uses on the GPU when solving the primal formulation of ridge
// regression.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace tpa::util {
class ThreadPool;
}

namespace tpa::sparse {

class CscMatrix {
 public:
  CscMatrix() = default;

  /// Takes ownership of raw CSC arrays.  `col_offsets` has cols+1 entries;
  /// row indices within a column must strictly increase and be < rows.
  /// Violations throw std::invalid_argument.
  CscMatrix(Index rows, Index cols, std::vector<Offset> col_offsets,
            std::vector<Index> row_indices, std::vector<Value> values);

  Index rows() const noexcept { return rows_; }
  Index cols() const noexcept { return cols_; }
  Offset nnz() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  std::span<const Offset> col_offsets() const noexcept { return col_offsets_; }
  std::span<const Index> row_indices() const noexcept { return row_indices_; }
  std::span<const Value> values() const noexcept { return values_; }

  std::size_t col_nnz(Index c) const;

  /// View of column c's indices and values.
  SparseVectorView col(Index c) const;

  /// Squared L2 norm of every column, accumulated in double:  ||a_m||².
  /// Columns are independent; a non-null `pool` computes them in chunks
  /// with identical results.
  std::vector<double> col_squared_norms(util::ThreadPool* pool = nullptr) const;

  /// Dense value lookup (binary search within the column); 0 if absent.
  Value at(Index r, Index c) const;

  std::size_t memory_bytes() const noexcept;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Offset> col_offsets_{0};
  std::vector<Index> row_indices_;
  std::vector<Value> values_;
};

}  // namespace tpa::sparse
