// Fast binary serialization of labelled CSR matrices.
//
// Layout: magic "TPA1", little-endian header (rows, cols, nnz, label count),
// raw arrays, then an FNV-1a checksum of everything after the magic.  Used by
// the bench harness to cache generated datasets between runs.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/io_svmlight.hpp"

namespace tpa::sparse {

/// Serializes `data` to a binary stream; throws std::runtime_error on IO
/// failure.
void write_binary(std::ostream& out, const LabeledMatrix& data);
void write_binary_file(const std::string& path, const LabeledMatrix& data);

/// Deserializes; throws std::runtime_error on truncation, bad magic, or
/// checksum mismatch.
LabeledMatrix read_binary(std::istream& in);
LabeledMatrix read_binary_file(const std::string& path);

/// FNV-1a 64-bit over a byte range (exposed for tests).
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace tpa::sparse
