// Fast binary serialization of labelled CSR matrices.
//
// Layout: magic "TPA1", little-endian header (rows, cols, nnz, label count),
// raw arrays, then an FNV-1a checksum of everything after the magic.  Used by
// the bench harness to cache generated datasets between runs, and as the
// per-shard chunk format of the out-of-core store (store/format.hpp): every
// shard file is a self-checksummed TPA1 slice, so the whole store machinery
// reads and writes through this one module.
//
// Both directions stream: the writer pushes each array straight to the
// output while folding it into a running Fnv1a accumulator (O(1) heap beyond
// the caller's arrays), and the reader checksums as it fills the destination
// vectors.  read_binary_header() peeks at the shape without touching the
// payload — the store manifest validates shard files this way.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "sparse/io_svmlight.hpp"

namespace tpa::sparse {

/// Incrementally updatable FNV-1a 64-bit accumulator: feed any number of
/// byte ranges via update(), read the running digest at any point.  Chaining
/// update(a); update(b) equals one update over the concatenation, so
/// streaming writers can checksum without buffering the checksummed region.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;

  constexpr explicit Fnv1a(std::uint64_t seed = kOffsetBasis) noexcept
      : hash_(seed) {}

  void update(const void* data, std::size_t bytes) noexcept;
  std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_;
};

/// One-shot FNV-1a 64-bit over a byte range (wraps Fnv1a).
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = Fnv1a::kOffsetBasis);

/// The fixed-size header following the 4-byte magic.  Field order matches
/// the on-disk layout exactly.
struct BinaryHeader {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t nnz = 0;
  std::uint64_t labels = 0;

  /// Bytes of the arrays following the header (offsets/indices/values/
  /// labels), excluding magic, header and trailing checksum.
  std::uint64_t payload_bytes() const noexcept;
  /// Total file size implied by the header.
  std::uint64_t file_bytes() const noexcept;
};

/// Serializes `data` to a binary stream; throws std::runtime_error on IO
/// failure.  Arrays stream directly to `out` with the checksum accumulated
/// incrementally — nothing beyond the header is buffered.
void write_binary(std::ostream& out, const LabeledMatrix& data);
void write_binary_file(const std::string& path, const LabeledMatrix& data);

/// Deserializes; throws std::runtime_error on truncation, bad magic, or
/// checksum mismatch.
LabeledMatrix read_binary(std::istream& in);
LabeledMatrix read_binary_file(const std::string& path);
/// Deserializes from an in-memory image (e.g. a memory-mapped shard file);
/// same validation as the stream reader.
LabeledMatrix read_binary(const void* data, std::size_t size);

/// Reads magic + header only, leaving the stream positioned at the payload.
/// Throws on bad magic or truncation.  Cheap shape peek: the payload is
/// neither read nor checksummed.
BinaryHeader read_binary_header(std::istream& in);
BinaryHeader read_binary_header_file(const std::string& path);
BinaryHeader read_binary_header(const void* data, std::size_t size);

}  // namespace tpa::sparse
