// Shared scalar / index types for the sparse-matrix substrate.
//
// The paper stores data and model in 32-bit floats; we follow that for matrix
// values and model weights, while all objective / gap computations accumulate
// in double.  Indices are 32-bit (sufficient for the scaled experiments;
// offsets are 64-bit so total nnz may exceed 2^32).
#pragma once

#include <cstdint>

namespace tpa::sparse {

using Value = float;
using Index = std::uint32_t;
using Offset = std::uint64_t;

/// One matrix entry in coordinate form.
struct Triplet {
  Index row = 0;
  Index col = 0;
  Value value = 0.0F;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

}  // namespace tpa::sparse
