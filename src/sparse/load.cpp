#include "sparse/load.hpp"

#include "sparse/io_binary.hpp"

namespace tpa::sparse {

LabeledMatrix load_labeled_file(const std::string& path, Index num_features) {
  const bool is_binary =
      path.size() > 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
  return is_binary ? read_binary_file(path)
                   : read_svmlight_file(path, num_features);
}

}  // namespace tpa::sparse
