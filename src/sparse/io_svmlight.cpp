#include "sparse/io_svmlight.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sparse/coo.hpp"
#include "sparse/convert.hpp"

namespace tpa::sparse {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("svmlight parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

}  // namespace

LabeledMatrix read_svmlight(std::istream& in, Index num_features) {
  struct RawRow {
    std::vector<Index> cols;
    std::vector<Value> vals;
  };
  std::vector<RawRow> raw_rows;
  std::vector<float> labels;
  Index max_col = 0;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    float label = 0.0F;
    if (!(tokens >> label)) fail(line_no, "missing label");
    RawRow row;
    std::string pair;
    while (tokens >> pair) {
      if (pair[0] == '#') break;  // trailing comment
      const auto colon = pair.find(':');
      if (colon == std::string::npos) fail(line_no, "expected index:value");
      long index = 0;
      float value = 0.0F;
      try {
        index = std::stol(pair.substr(0, colon));
        value = std::stof(pair.substr(colon + 1));
      } catch (const std::exception&) {
        fail(line_no, "bad index:value token '" + pair + "'");
      }
      if (index < 1) fail(line_no, "indices are 1-based and positive");
      const auto col = static_cast<Index>(index - 1);
      if (!row.cols.empty() && col <= row.cols.back()) {
        fail(line_no, "feature indices must strictly increase");
      }
      row.cols.push_back(col);
      row.vals.push_back(value);
      max_col = std::max(max_col, col);
    }
    labels.push_back(label);
    raw_rows.push_back(std::move(row));
  }

  Index cols = num_features;
  if (cols == 0) {
    cols = raw_rows.empty() ? 0 : max_col + 1;
  } else if (max_col >= cols) {
    throw std::runtime_error("svmlight: feature index exceeds num_features");
  }

  const auto rows = static_cast<Index>(raw_rows.size());
  std::vector<Offset> offsets(static_cast<std::size_t>(rows) + 1, 0);
  Offset nnz = 0;
  for (Index r = 0; r < rows; ++r) {
    nnz += raw_rows[r].cols.size();
    offsets[r + 1] = nnz;
  }
  std::vector<Index> col_indices;
  std::vector<Value> values;
  col_indices.reserve(nnz);
  values.reserve(nnz);
  for (const auto& row : raw_rows) {
    col_indices.insert(col_indices.end(), row.cols.begin(), row.cols.end());
    values.insert(values.end(), row.vals.begin(), row.vals.end());
  }
  return LabeledMatrix{CsrMatrix(rows, cols, std::move(offsets),
                                 std::move(col_indices), std::move(values)),
                       std::move(labels)};
}

LabeledMatrix read_svmlight_file(const std::string& path, Index num_features) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_svmlight(in, num_features);
}

void write_svmlight(std::ostream& out, const CsrMatrix& matrix,
                    std::span<const float> labels) {
  if (labels.size() != matrix.rows()) {
    throw std::invalid_argument("write_svmlight: label count != rows");
  }
  char buf[64];
  for (Index r = 0; r < matrix.rows(); ++r) {
    std::snprintf(buf, sizeof(buf), "%.7g", static_cast<double>(labels[r]));
    out << buf;
    const auto view = matrix.row(r);
    for (std::size_t k = 0; k < view.nnz(); ++k) {
      std::snprintf(buf, sizeof(buf), " %u:%.7g", view.indices[k] + 1,
                    static_cast<double>(view.values[k]));
      out << buf;
    }
    out << '\n';
  }
}

void write_svmlight_file(const std::string& path, const CsrMatrix& matrix,
                         std::span<const float> labels) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_svmlight(out, matrix, labels);
}

}  // namespace tpa::sparse
