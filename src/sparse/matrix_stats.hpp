// Dataset summaries: density, nnz distributions and memory footprints.
// Used by the timing models (which are parameterised by nnz, N, M) and by
// bench reporting to echo the dataset characteristics alongside results.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"
#include "util/stats.hpp"

namespace tpa::sparse {

struct MatrixStats {
  Index rows = 0;
  Index cols = 0;
  Offset nnz = 0;
  double density = 0.0;            // nnz / (rows*cols)
  util::RunningStats row_nnz;      // nonzeros per row
  Index empty_rows = 0;
  Index populated_cols = 0;        // columns with at least one entry
  std::size_t csr_bytes = 0;       // 4-byte values + 4-byte indices + offsets
  std::size_t csc_bytes = 0;

  /// One-line human-readable summary.
  std::string summary() const;
};

MatrixStats compute_stats(const CsrMatrix& matrix);

std::ostream& operator<<(std::ostream& out, const MatrixStats& stats);

}  // namespace tpa::sparse
