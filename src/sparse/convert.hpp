// Format conversions between COO, CSR and CSC.
//
// The solvers need the same matrix in both compressed orientations (columns
// for the primal updates, rows for the dual updates); these converters are
// single-pass counting-sort implementations, O(nnz + rows + cols).
#pragma once

#include "sparse/coo.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace tpa::sparse {

/// Builds a CSR matrix from coordinate entries.  Duplicates are summed.
CsrMatrix coo_to_csr(const CooBuilder& coo);

/// Builds a CSC matrix from coordinate entries.  Duplicates are summed.
CscMatrix coo_to_csc(const CooBuilder& coo);

/// Re-orients a CSR matrix into CSC (same logical matrix).
CscMatrix csr_to_csc(const CsrMatrix& csr);

/// Re-orients a CSC matrix into CSR (same logical matrix).
CsrMatrix csc_to_csr(const CscMatrix& csc);

/// Transpose: returns B = Aᵀ in CSR form (rows of B are columns of A).
CsrMatrix transpose(const CsrMatrix& csr);

/// Materialises the matrix as a dense row-major buffer (tests / tiny data
/// only; throws std::length_error beyond 64M entries).
std::vector<double> to_dense(const CsrMatrix& csr);

}  // namespace tpa::sparse
