#include "sparse/coo.hpp"

#include <algorithm>
#include <cassert>

namespace tpa::sparse {

CooBuilder::CooBuilder(Index rows, Index cols) : rows_(rows), cols_(cols) {}

void CooBuilder::add(Index row, Index col, Value value) {
  assert(row < rows_);
  assert(col < cols_);
  entries_.push_back(Triplet{row, col, value});
}

void CooBuilder::coalesce() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  std::vector<Triplet> merged;
  merged.reserve(entries_.size());
  for (const auto& entry : entries_) {
    if (!merged.empty() && merged.back().row == entry.row &&
        merged.back().col == entry.col) {
      merged.back().value += entry.value;
    } else {
      merged.push_back(entry);
    }
  }
  std::erase_if(merged, [](const Triplet& t) { return t.value == 0.0F; });
  entries_ = std::move(merged);
}

}  // namespace tpa::sparse
