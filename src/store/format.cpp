#include "store/format.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "sparse/io_binary.hpp"

namespace tpa::store {
namespace {

constexpr const char* kManifestMagic = "TPASTORE";
constexpr int kManifestVersion = 1;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("store manifest: " + what);
}

std::uint64_t parse_u64(std::istream& in, const char* field) {
  std::string key;
  std::uint64_t value = 0;
  if (!(in >> key >> value) || key != field) {
    fail(std::string("expected '") + field + " <n>'");
  }
  return value;
}

}  // namespace

std::uint64_t rows_per_shard(std::uint64_t rows, std::uint64_t shards) {
  if (shards == 0) throw std::invalid_argument("rows_per_shard: shards == 0");
  return std::max<std::uint64_t>(1, (rows + shards - 1) / shards);
}

void write_manifest(std::ostream& out, const Manifest& manifest) {
  out << kManifestMagic << ' ' << kManifestVersion << '\n';
  out << "name " << manifest.name << '\n';
  out << "rows " << manifest.rows << '\n';
  out << "cols " << manifest.cols << '\n';
  out << "nnz " << manifest.nnz << '\n';
  out << "shards " << manifest.shards.size() << '\n';
  for (const auto& shard : manifest.shards) {
    out << "shard " << shard.row_begin << ' ' << shard.rows << ' '
        << shard.nnz << ' ' << shard.bytes << ' ' << shard.file << '\n';
  }
  if (!out) fail("write failed");
}

void write_manifest_file(const std::string& path, const Manifest& manifest) {
  std::ofstream out(path);
  if (!out) fail("cannot open " + path + " for writing");
  write_manifest(out, manifest);
}

Manifest read_manifest(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kManifestMagic) {
    fail("bad magic");
  }
  if (version != kManifestVersion) {
    fail("unsupported version " + std::to_string(version));
  }
  Manifest manifest;
  std::string key;
  if (!(in >> key >> manifest.name) || key != "name") fail("expected 'name'");
  manifest.rows = parse_u64(in, "rows");
  manifest.cols = parse_u64(in, "cols");
  manifest.nnz = parse_u64(in, "nnz");
  const std::uint64_t shards = parse_u64(in, "shards");

  std::uint64_t next_row = 0;
  std::uint64_t total_nnz = 0;
  for (std::uint64_t i = 0; i < shards; ++i) {
    ShardInfo shard;
    if (!(in >> key >> shard.row_begin >> shard.rows >> shard.nnz >>
          shard.bytes >> shard.file) ||
        key != "shard") {
      fail("truncated shard table (shard " + std::to_string(i) + ")");
    }
    if (shard.row_begin != next_row || shard.rows == 0) {
      fail("shard " + std::to_string(i) + " breaks the contiguous row order");
    }
    next_row += shard.rows;
    total_nnz += shard.nnz;
    manifest.shards.push_back(std::move(shard));
  }
  if (next_row != manifest.rows || total_nnz != manifest.nnz) {
    fail("shard table does not sum to the global shape");
  }
  return manifest;
}

Manifest read_manifest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  return read_manifest(in);
}

ShardWriter::ShardWriter(std::string directory, std::string name,
                         sparse::Index cols, std::uint64_t rows_per_shard)
    : directory_(std::move(directory)),
      name_(std::move(name)),
      cols_(cols),
      rows_per_shard_(rows_per_shard) {
  if (rows_per_shard_ == 0) {
    throw std::invalid_argument("ShardWriter: rows_per_shard must be > 0");
  }
  std::filesystem::create_directories(directory_);
  manifest_path_ = directory_ + "/" + name_ + ".manifest";
  manifest_.name = name_;
  manifest_.cols = cols;
}

void ShardWriter::append(std::span<const sparse::Index> indices,
                         std::span<const sparse::Value> values, float label) {
  if (finished_) throw std::logic_error("ShardWriter: append after finish");
  if (indices.size() != values.size()) {
    throw std::invalid_argument("ShardWriter: index/value size mismatch");
  }
  indices_.insert(indices_.end(), indices.begin(), indices.end());
  values_.insert(values_.end(), values.begin(), values.end());
  offsets_.push_back(static_cast<sparse::Offset>(indices_.size()));
  labels_.push_back(label);
  if (labels_.size() == rows_per_shard_) flush_shard();
}

void ShardWriter::flush_shard() {
  if (labels_.empty()) return;
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".shard%05zu.tpa1",
                manifest_.shards.size());
  const std::string file = name_ + suffix;

  ShardInfo shard;
  shard.row_begin = manifest_.rows;
  shard.rows = labels_.size();
  shard.nnz = indices_.size();
  shard.file = file;

  // CsrMatrix validates the accumulated rows (monotone offsets, strictly
  // increasing in-range indices) as a side effect of construction.
  const sparse::LabeledMatrix slice{
      sparse::CsrMatrix(static_cast<sparse::Index>(labels_.size()), cols_,
                        std::move(offsets_), std::move(indices_),
                        std::move(values_)),
      std::move(labels_)};
  sparse::write_binary_file(directory_ + "/" + file, slice);
  shard.bytes = sparse::BinaryHeader{shard.rows, manifest_.cols, shard.nnz,
                                     shard.rows}
                    .file_bytes();

  manifest_.rows += shard.rows;
  manifest_.nnz += shard.nnz;
  manifest_.shards.push_back(std::move(shard));

  offsets_ = {0};
  indices_.clear();
  values_.clear();
  labels_.clear();
}

Manifest ShardWriter::finish() {
  if (finished_) throw std::logic_error("ShardWriter: finish called twice");
  flush_shard();
  finished_ = true;
  write_manifest_file(manifest_path_, manifest_);
  return manifest_;
}

Manifest write_store(const std::string& directory, const std::string& name,
                     const sparse::LabeledMatrix& data, std::uint64_t shards) {
  const auto& matrix = data.matrix;
  ShardWriter writer(directory, name, matrix.cols(),
                     rows_per_shard(matrix.rows(), shards));
  for (sparse::Index r = 0; r < matrix.rows(); ++r) {
    const auto row = matrix.row(r);
    writer.append(row.indices, row.values, data.labels[r]);
  }
  return writer.finish();
}

}  // namespace tpa::store
