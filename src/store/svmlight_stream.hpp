// Streaming svmlight → shard store conversion: each line parses straight
// into ShardWriter::append, so a 40 GB text file converts with one shard's
// arrays of peak memory — the constraint the whole store exists for.
//
// The svmlight grammar matched here is exactly sparse/io_svmlight's
// (1-based strictly increasing indices, '#' comments, blank lines
// skipped), so a store converted from a file decodes to the same
// LabeledMatrix that read_svmlight_file would build in memory.
#pragma once

#include <iosfwd>
#include <string>

#include "store/format.hpp"

namespace tpa::store {

/// Streams svmlight text into `<directory>/<name>.manifest` + shards of
/// `rows_per_shard` rows.  `num_features` is the global column count and
/// must be positive for the stream variant (a stream cannot be rescanned
/// to infer it).  Malformed lines throw std::runtime_error with the line
/// number.
Manifest convert_svmlight_to_store(std::istream& in,
                                   const std::string& directory,
                                   const std::string& name,
                                   std::uint64_t rows_per_shard,
                                   sparse::Index num_features);

/// File variant: `num_features` == 0 makes a first streaming pass over the
/// file to find the maximum feature index, then converts on the second
/// pass — still one shard of peak memory, at the price of reading the text
/// twice.
Manifest convert_svmlight_file_to_store(const std::string& svm_path,
                                        const std::string& directory,
                                        const std::string& name,
                                        std::uint64_t rows_per_shard,
                                        sparse::Index num_features = 0);

}  // namespace tpa::store
