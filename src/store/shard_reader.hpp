// Validated shard access for the out-of-core store.
//
// ShardReader resolves a manifest's shard table against the filesystem and
// deserialises individual shards on demand, in one of two modes behind the
// same interface:
//
//   kBuffered — plain double-buffered stream reads (sparse::read_binary on
//     an ifstream): the OS page cache is the only cache, working-set cost
//     is one shard's arrays.  The portable default.
//   kMmap     — the shard file is mapped read-only and decoded from the
//     mapping (sparse::read_binary on the image), then unmapped.  Saves
//     one user-space copy of the raw bytes on hosts with mmap; silently
//     falls back to kBuffered where POSIX mmap is unavailable.
//
// Every read validates: manifest-declared file size vs. the actual file,
// header shape vs. the manifest row/nnz entry, and the shard's trailing
// FNV-1a checksum (inside read_binary).  A shard that fails any check
// throws std::runtime_error — a truncated or corrupted shard can never
// reach a solver.  Reads are thread-safe (no shared mutable state), which
// is what lets the prefetch pipeline pull shard k+1 while the solver owns
// shard k.  Bytes read land on the "store.bytes_read" counter under a
// "store/load" span.
#pragma once

#include <cstddef>
#include <string>

#include "store/format.hpp"

namespace tpa::store {

enum class ReadMode { kBuffered, kMmap };

/// Parses "buffered" | "mmap"; throws std::invalid_argument otherwise.
ReadMode parse_read_mode(const std::string& name);
const char* read_mode_name(ReadMode mode);

class ShardReader {
 public:
  /// `manifest_dir` anchors the manifest's relative shard paths.
  ShardReader(Manifest manifest, std::string manifest_dir,
              ReadMode mode = ReadMode::kBuffered);

  /// Opens a store by manifest path (directory derived from it).
  static ShardReader open(const std::string& manifest_path,
                          ReadMode mode = ReadMode::kBuffered);

  const Manifest& manifest() const noexcept { return manifest_; }
  ReadMode mode() const noexcept { return mode_; }
  std::size_t num_shards() const noexcept { return manifest_.shards.size(); }

  /// Reads, validates and deserialises shard `i`.  Thread-safe.
  sparse::LabeledMatrix read_shard(std::size_t i) const;

  /// Absolute path of shard `i`'s file.
  std::string shard_path(std::size_t i) const;

 private:
  Manifest manifest_;
  std::string dir_;
  ReadMode mode_;
};

}  // namespace tpa::store
