// Out-of-core dual SCD over a sharded dataset (DESIGN.md §12).
//
// The dual formulation is what makes streaming possible: coordinates are
// examples (rows), so the optimiser state that must stay resident is just
// α ∈ R^N and w̄ = Aᵀα ∈ R^M — the matrix itself streams through shard by
// shard.  (The primal would need column access across the whole matrix
// every update; there is deliberately no primal streaming path.)
//
// Epoch structure — the shard-aware permutation:
//   * a shard-order EpochPermutation draws the shard visit sequence, then
//   * one per-shard EpochPermutation draws the row order within each
//     resident shard.
// Every stream is seeded by deterministic splits of the master seed in a
// fixed construction order, and each sweep applies core::scd_sweep (or
// core::replicated_sweep for threads > 1) to the shard's α sub-span —
// exactly the code path the in-memory solvers run.  Consequently a
// streamed run is a pure function of (source bytes, seed, threads,
// merge_every): prefetch mode, window size and read mode change wall time
// only, never one bit of α or w̄.
//
// Staleness-freedom: only the resident shard's rows are updated, and every
// update lands in α and w̄ before the next shard's sweep begins (acquire()
// orders the hand-off), so no update is ever computed against a stale w̄ —
// the streamed trajectory needs no correction terms.
//
// Checkpoint/resume reuses EpochPermutation::skip: to resume at (E full
// epochs, p shards into epoch E+1), skip every stream past its consumed
// draw count — shard order past E draws, each row stream past E draws plus
// one more for shards already visited this epoch.  run_shards() exposes
// the mid-epoch stopping point the checkpoint format records.
//
// duality_gap() streams the shards once in index order and reproduces the
// *serial* accumulation order of RidgeProblem::dual_duality_gap exactly
// (per-row dots in global row order, then the same objective algebra), so
// the streamed gap is bit-equal to what the in-memory problem would
// report for the same (α, w̄).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/replica_set.hpp"
#include "core/solver.hpp"
#include "store/prefetch.hpp"
#include "store/streaming_dataset.hpp"
#include "util/permutation.hpp"
#include "util/thread_pool.hpp"

namespace tpa::store {

struct StreamingConfig {
  double lambda = 1e-3;
  std::uint64_t seed = 42;
  /// 1 = sequential sweep per shard; >1 = replicated sweep across a pool.
  int threads = 1;
  /// Decoded shards allowed in memory at once (>= 1; 2 = double buffer).
  std::size_t resident_shards = 2;
  /// false = load inline in acquire() (the no-overlap control arm).
  bool async_prefetch = true;
  /// Replicated sweeps: updates per worker between merges (0 = auto).
  int merge_every = 0;
};

class StreamingScdSolver {
 public:
  /// `source` must outlive the solver.  Throws std::invalid_argument on a
  /// non-positive lambda/threads or an empty source.
  StreamingScdSolver(const StreamingDataset& source, StreamingConfig config);

  const std::string& name() const noexcept { return name_; }
  const StreamingConfig& config() const noexcept { return config_; }
  const StreamingDataset& source() const noexcept { return *source_; }

  /// Sweeps at most `max_shards` more shards, stopping early at an epoch
  /// boundary; returns the number actually swept.  Drives both full
  /// epochs (run_epoch) and the mid-epoch checkpoint stop.
  std::size_t run_shards(std::size_t max_shards);

  /// Runs to the end of the current epoch (a fresh one if at a boundary).
  core::EpochReport run_epoch();

  int epochs_completed() const noexcept { return epochs_completed_; }
  /// Shards already swept in the in-progress epoch (0 at a boundary).
  std::size_t shards_done() const noexcept { return pass_active_ ? pos_ : 0; }
  bool mid_epoch() const noexcept { return pass_active_; }

  /// Streamed duality gap, bit-equal to the serial in-memory evaluation.
  /// Only callable at an epoch boundary (throws std::logic_error
  /// mid-epoch — the gap needs a full pass of its own).
  double duality_gap();

  std::span<const float> alpha() const noexcept { return alpha_; }
  std::span<const float> shared() const noexcept { return shared_; }

  /// Restores optimiser state saved after `epochs` full epochs plus
  /// `shards_done` shards of the next one.  Must be called before any
  /// sweeping on a freshly constructed solver with the same source,
  /// seed and thread count as the interrupted run.
  void resume(int epochs, std::size_t shards_done, std::vector<float> alpha,
              std::vector<float> shared);

  const PrefetchStats& prefetch_stats() const noexcept {
    return pipeline_.stats();
  }

 private:
  void start_pass(std::size_t start_pos);
  void sweep_shard(const ResidentShard& shard);

  const StreamingDataset* source_;
  StreamingConfig config_;
  std::string name_;
  std::vector<float> alpha_;   // N, the dual weights
  std::vector<float> shared_;  // M, w̄ = Aᵀα
  util::EpochPermutation shard_perm_;
  std::vector<util::EpochPermutation> row_perms_;  // one per shard
  PrefetchPipeline pipeline_;
  core::ReplicaSet replicas_;  // replicated sweeps only; persists
  std::unique_ptr<util::ThreadPool> pool_;  // threads > 1 only
  std::vector<std::size_t> order_;  // current epoch's shard sequence
  std::size_t pos_ = 0;
  bool pass_active_ = false;
  int epochs_completed_ = 0;
  bool swept_anything_ = false;
};

}  // namespace tpa::store
