#include "store/run.hpp"

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace tpa::store {

StreamingCheckpoint make_checkpoint(const StreamingScdSolver& solver) {
  StreamingCheckpoint checkpoint;
  checkpoint.epoch = static_cast<std::uint64_t>(solver.epochs_completed());
  checkpoint.shards_done = solver.shards_done();
  checkpoint.seed = solver.config().seed;
  checkpoint.threads = static_cast<std::uint64_t>(solver.config().threads);
  checkpoint.rows = solver.source().rows();
  checkpoint.cols = solver.source().cols();
  checkpoint.shards = solver.source().num_shards();
  checkpoint.lambda = solver.config().lambda;
  checkpoint.alpha.assign(solver.alpha().begin(), solver.alpha().end());
  checkpoint.shared.assign(solver.shared().begin(), solver.shared().end());
  return checkpoint;
}

core::ConvergenceTrace run_streaming(StreamingScdSolver& solver,
                                     const core::RunOptions& options,
                                     const CheckpointOptions& checkpoint) {
  core::ConvergenceTrace trace;
  double wall_total = 0.0;
  const int interval = core::effective_gap_interval(options);
  const bool shard_checkpoints =
      !checkpoint.path.empty() && checkpoint.every_shards > 0;
  auto& epoch_counter = obs::metrics().counter("train.epochs");
  auto& gap_counter = obs::metrics().counter("train.gap_evals");

  // A resumed solver continues its interrupted epoch first; epoch numbers
  // in the trace stay the global ones.
  for (int epoch = solver.epochs_completed() + 1;
       epoch <= options.max_epochs; ++epoch) {
    const auto report = [&] {
      obs::TraceSpan span("train/epoch", obs::kCurrentThread, epoch);
      if (!shard_checkpoints) return solver.run_epoch();
      const util::WallTimer timer;
      core::EpochReport chunked;
      do {
        solver.run_shards(checkpoint.every_shards);
        write_checkpoint_file(checkpoint.path, make_checkpoint(solver));
      } while (solver.mid_epoch());
      chunked.coordinate_updates = solver.source().rows();
      chunked.wall_seconds = timer.seconds();
      return chunked;
    }();
    epoch_counter.add();
    wall_total += report.wall_seconds;
    if (epoch % interval == 0 || epoch == options.max_epochs) {
      core::TracePoint point;
      point.epoch = epoch;
      {
        obs::TraceSpan span("train/gap_eval", obs::kCurrentThread, epoch);
        point.gap = solver.duality_gap();
      }
      gap_counter.add();
      point.wall_seconds = wall_total;
      trace.add(point);
      if (options.target_gap > 0.0 && point.gap <= options.target_gap) break;
    }
  }
  if (!checkpoint.path.empty() && !shard_checkpoints) {
    write_checkpoint_file(checkpoint.path, make_checkpoint(solver));
  }
  return trace;
}

}  // namespace tpa::store
