#include "store/streaming_solver.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/seq_scd.hpp"
#include "core/threaded_scd.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace tpa::store {
namespace {

// A fixed master-seed split order is the whole determinism story: shard
// stream first, then one row stream per shard in index order.  Any change
// here invalidates existing checkpoints.
util::Rng master_rng(std::uint64_t seed) { return util::Rng(seed); }

}  // namespace

StreamingScdSolver::StreamingScdSolver(const StreamingDataset& source,
                                       StreamingConfig config)
    : source_(&source),
      config_(config),
      name_("Streaming-SCD (" + std::to_string(config.threads) +
            " thread" + (config.threads == 1 ? "" : "s") + ", " +
            std::to_string(source.num_shards()) + " shards)"),
      alpha_(static_cast<std::size_t>(source.rows()), 0.0F),
      shared_(static_cast<std::size_t>(source.cols()), 0.0F),
      shard_perm_([&] {
        if (config.lambda <= 0.0) {
          throw std::invalid_argument(
              "StreamingScdSolver: lambda must be positive");
        }
        if (config.threads <= 0) {
          throw std::invalid_argument(
              "StreamingScdSolver: threads must be positive");
        }
        if (source.num_shards() == 0 || source.rows() == 0 ||
            source.cols() == 0) {
          throw std::invalid_argument(
              "StreamingScdSolver: source must be non-empty");
        }
        util::Rng master = master_rng(config.seed);
        return util::EpochPermutation(source.num_shards(), master.split());
      }()),
      pipeline_(source, config.resident_shards, config.async_prefetch) {
  // Rebuild the master stream and consume the same first split the shard
  // permutation took, so row streams get splits 2, 3, … in shard order.
  util::Rng master = master_rng(config_.seed);
  (void)master.split();
  row_perms_.reserve(source.num_shards());
  for (std::size_t i = 0; i < source.num_shards(); ++i) {
    row_perms_.emplace_back(static_cast<std::size_t>(source.shard_rows(i)),
                            master.split());
  }
  if (config_.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(config_.threads));
  }
}

void StreamingScdSolver::start_pass(std::size_t start_pos) {
  const auto shard_order = shard_perm_.next();
  order_.assign(shard_order.begin(), shard_order.end());
  pipeline_.begin_pass(order_, start_pos);
  pos_ = start_pos;
  pass_active_ = true;
}

void StreamingScdSolver::sweep_shard(const ResidentShard& shard) {
  obs::TraceSpan sweep("streaming_scd/sweep", obs::kCurrentThread,
                       static_cast<std::int64_t>(shard.shard));
  // The per-shard problem is a thin view (pointer + λ + global N); the λN
  // terms use the global example count exactly as the distributed
  // by-example shards do (RidgeProblem::effective_examples).
  const core::RidgeProblem problem(
      shard.dataset, config_.lambda,
      static_cast<core::Index>(source_->rows()));
  const auto order = row_perms_[shard.shard].next();
  const auto weights =
      std::span<float>(alpha_).subspan(
          static_cast<std::size_t>(shard.row_begin),
          static_cast<std::size_t>(shard.dataset.num_examples()));
  if (config_.threads > 1) {
    core::replicated_sweep(problem, core::Formulation::kDual, order, weights,
                           shared_, replicas_, *pool_, config_.threads,
                           config_.merge_every);
  } else {
    core::scd_sweep(problem, core::Formulation::kDual, order, weights,
                    shared_);
  }
  swept_anything_ = true;
}

std::size_t StreamingScdSolver::run_shards(std::size_t max_shards) {
  const std::size_t num_shards = source_->num_shards();
  std::size_t done = 0;
  while (done < max_shards) {
    if (!pass_active_) start_pass(0);
    sweep_shard(pipeline_.acquire(pos_));
    ++pos_;
    ++done;
    if (pos_ == num_shards) {
      pipeline_.end_pass();
      pass_active_ = false;
      pos_ = 0;
      ++epochs_completed_;
      break;  // epoch boundary: callers re-enter for the next epoch
    }
  }
  return done;
}

core::EpochReport StreamingScdSolver::run_epoch() {
  const util::WallTimer timer;
  if (!pass_active_) start_pass(0);
  // Rows this call will sweep: a resumed epoch covers only its remainder.
  std::uint64_t updates = 0;
  for (std::size_t p = pos_; p < order_.size(); ++p) {
    updates += source_->shard_rows(order_[p]);
  }
  run_shards(source_->num_shards() - pos_);
  core::EpochReport report;
  report.coordinate_updates = updates;
  report.wall_seconds = timer.seconds();
  return report;
}

double StreamingScdSolver::duality_gap() {
  if (pass_active_) {
    throw std::logic_error(
        "StreamingScdSolver: duality_gap() mid-epoch (needs its own pass)");
  }
  const auto n = static_cast<double>(source_->rows());
  // β = w̄/λ, element order and arithmetic exactly as
  // RidgeProblem::primal_from_dual_shared.
  std::vector<float> beta(shared_.size());
  const double inv_lambda = 1.0 / config_.lambda;
  for (std::size_t i = 0; i < shared_.size(); ++i) {
    beta[i] = static_cast<float>(shared_[i] * inv_lambda);
  }

  // One identity-order pass: residual_sq and α·y accumulate in global row
  // order — the serial in-memory accumulation sequence, merely split at
  // shard boundaries.
  double residual_sq = 0.0;
  double alpha_y = 0.0;
  std::vector<std::size_t> identity(source_->num_shards());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  pipeline_.begin_pass(std::move(identity));
  for (std::size_t s = 0; s < source_->num_shards(); ++s) {
    const ResidentShard& shard = pipeline_.acquire(s);
    const auto& matrix = shard.dataset.by_row();
    const auto labels = shard.dataset.labels();
    std::vector<float> w(static_cast<std::size_t>(matrix.rows()));
    linalg::csr_matvec(matrix, beta, w, nullptr);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double r = static_cast<double>(w[i]) - labels[i];
      residual_sq += r * r;
    }
    const auto alpha_slice = std::span<const float>(alpha_).subspan(
        static_cast<std::size_t>(shard.row_begin), w.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
      alpha_y += static_cast<double>(alpha_slice[i]) * labels[i];
    }
  }
  pipeline_.end_pass();

  const double primal = residual_sq / (2.0 * n) +
                        0.5 * config_.lambda * linalg::squared_norm(beta);
  const double alpha_sq = linalg::squared_norm(std::span<const float>(alpha_));
  const double wbar_sq = linalg::squared_norm(std::span<const float>(shared_));
  const double dual =
      -0.5 * n * alpha_sq - wbar_sq / (2.0 * config_.lambda) + alpha_y;
  return std::abs(primal - dual);
}

void StreamingScdSolver::resume(int epochs, std::size_t shards_done,
                                std::vector<float> alpha,
                                std::vector<float> shared) {
  if (swept_anything_ || pass_active_) {
    throw std::logic_error(
        "StreamingScdSolver: resume() on a solver that already swept");
  }
  if (epochs < 0 || shards_done >= source_->num_shards() + 1 ||
      alpha.size() != alpha_.size() || shared.size() != shared_.size()) {
    throw std::invalid_argument("StreamingScdSolver: bad resume state");
  }
  alpha_ = std::move(alpha);
  shared_ = std::move(shared);
  epochs_completed_ = epochs;

  // Realign every permutation stream to its consumed-draw count: the shard
  // stream has drawn `epochs` orders (plus the in-progress one, redrawn
  // below), each row stream `epochs` orders plus one more per shard already
  // visited this epoch.
  shard_perm_.skip(epochs);
  for (auto& perm : row_perms_) perm.skip(epochs);
  if (shards_done > 0) {
    start_pass(shards_done);
    for (std::size_t p = 0; p < shards_done; ++p) {
      row_perms_[order_[p]].skip(1);
    }
  }
}

}  // namespace tpa::store
