// On-disk layout of the out-of-core shard store (DESIGN.md §12).
//
// A store is one text manifest plus N shard files.  Every shard file is a
// complete, self-checksummed TPA1 binary (sparse/io_binary.hpp) holding a
// contiguous row slice [row_begin, row_begin + rows) of the global matrix
// with its label range; `cols` in each shard header is the *global* feature
// count, so a shard deserialises to a LabeledMatrix that is directly usable
// as a by-example slice.  The manifest records the global shape and, per
// shard, the row range, nnz and exact file size — enough to validate a
// shard's header (read_binary_header) before paying for its payload.
//
//   TPASTORE 1
//   name <dataset name>
//   rows <N>  cols <M>  nnz <nnz>  shards <K>     (one field per line)
//   shard <row_begin> <rows> <nnz> <bytes> <file>  (K lines, file relative
//                                                   to the manifest)
//
// ShardWriter streams: rows are appended one at a time and each shard is
// flushed to disk the moment it fills, so peak memory is one shard's
// arrays — the full matrix is never materialised.  The ceil split rule
// (rows_per_shard) is shared with the in-memory comparison adapter
// (MemoryShardedDataset) so both sides of a bit-exactness test agree on
// shard boundaries.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "sparse/io_svmlight.hpp"
#include "sparse/types.hpp"

namespace tpa::store {

struct ShardInfo {
  std::uint64_t row_begin = 0;
  std::uint64_t rows = 0;
  std::uint64_t nnz = 0;
  std::uint64_t bytes = 0;  // exact file size; readers validate it
  std::string file;         // path relative to the manifest's directory
};

struct Manifest {
  std::string name;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t nnz = 0;
  std::vector<ShardInfo> shards;
};

/// The even split rule: ceil(rows / shards) rows per shard, last shard
/// short.  Note ceil(rows / rows_per_shard(rows, k)) may be < k (e.g. 10
/// rows into 4 shards gives 3+3+3+1 → 4, but 6 rows into 4 gives 2+2+2 →
/// 3); writers and the in-memory adapter both derive shard count from the
/// quotient, never from the requested k.
std::uint64_t rows_per_shard(std::uint64_t rows, std::uint64_t shards);

/// Serialises / parses the manifest text format above.  Readers throw
/// std::runtime_error on version/field mismatches or shard lines that do
/// not sum to the global shape.
void write_manifest(std::ostream& out, const Manifest& manifest);
void write_manifest_file(const std::string& path, const Manifest& manifest);
Manifest read_manifest(std::istream& in);
Manifest read_manifest_file(const std::string& path);

/// Streaming store writer: append rows in global order, shards flush to
/// `<directory>/<name>.shardNNNNN.tpa1` as they fill, finish() writes
/// `<directory>/<name>.manifest` and returns it.  Peak memory is one
/// shard's arrays.  Rows within a shard are validated by the CsrMatrix
/// constructor at flush (strictly increasing in-range indices).
class ShardWriter {
 public:
  /// `cols` is the global feature count stamped into every shard header;
  /// `rows_per_shard` > 0 caps each shard's row count.
  ShardWriter(std::string directory, std::string name, sparse::Index cols,
              std::uint64_t rows_per_shard);

  /// Appends one row (parallel index/value arrays) and its label.
  void append(std::span<const sparse::Index> indices,
              std::span<const sparse::Value> values, float label);

  /// Flushes the tail shard, writes the manifest, returns it.  The writer
  /// is spent afterwards; append() throws.
  Manifest finish();

  const std::string& manifest_path() const noexcept { return manifest_path_; }

 private:
  void flush_shard();

  std::string directory_;
  std::string name_;
  std::string manifest_path_;
  sparse::Index cols_;
  std::uint64_t rows_per_shard_;
  bool finished_ = false;

  Manifest manifest_;
  // Current shard under construction.
  std::vector<sparse::Offset> offsets_{0};
  std::vector<sparse::Index> indices_;
  std::vector<sparse::Value> values_;
  std::vector<float> labels_;
};

/// Convenience: shards an in-memory LabeledMatrix with the even split rule
/// into `shards` requested shards (see rows_per_shard for the actual
/// count) and returns the manifest.  Row data is appended row-at-a-time
/// through ShardWriter, so peak extra memory is still one shard.
Manifest write_store(const std::string& directory, const std::string& name,
                     const sparse::LabeledMatrix& data, std::uint64_t shards);

}  // namespace tpa::store
