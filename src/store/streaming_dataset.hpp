// Shard sources for out-of-core training.
//
// StreamingDataset is the one interface the prefetch pipeline and the
// streaming solver see: a dataset partitioned into contiguous row shards,
// loadable one shard at a time.  Two implementations:
//
//   StoreStreamingDataset  — shards come off disk through a ShardReader
//     (the real out-of-core path).
//   MemoryShardedDataset   — shards are row slices of an in-memory
//     LabeledMatrix, split with the same ceil rule the ShardWriter uses.
//     This is the comparison arm of the bit-exactness tests: both
//     implementations feed the identical solver code, so a streamed run
//     and its in-memory twin differ only in where the bytes come from.
//
// decode_shard turns a loaded slice into the solver-ready form: a
// rows-only data::Dataset (CSR + bucketed rows + row norms; no column
// orientation — dual-formulation streaming never needs one, and the
// column copy would double the resident budget per shard).  Decode cost
// is recorded under a "store/decode" span; it is the work the prefetch
// pipeline hides behind the sweep of the previous shard.
#pragma once

#include <cstddef>
#include <string>

#include "data/dataset.hpp"
#include "store/shard_reader.hpp"

namespace tpa::store {

/// A shard resident in memory, ready to sweep: the decoded rows-only
/// Dataset plus its global row range.
struct ResidentShard {
  std::size_t shard = 0;        // shard index in the source
  std::uint64_t row_begin = 0;  // global row of the shard's first example
  data::Dataset dataset;        // rows [row_begin, row_begin + rows)
};

class StreamingDataset {
 public:
  virtual ~StreamingDataset() = default;

  virtual const std::string& name() const = 0;
  virtual std::size_t num_shards() const = 0;
  virtual std::uint64_t rows() const = 0;
  virtual std::uint64_t cols() const = 0;
  virtual std::uint64_t nnz() const = 0;
  virtual std::uint64_t shard_row_begin(std::size_t i) const = 0;
  virtual std::uint64_t shard_rows(std::size_t i) const = 0;

  /// Loads shard `i`'s raw slice.  Must be thread-safe: the prefetch
  /// pipeline calls it from its worker while the solver sweeps.
  virtual sparse::LabeledMatrix load_shard(std::size_t i) const = 0;
};

/// Loads and decodes shard `i` into sweep-ready form (rows-only Dataset).
ResidentShard decode_shard(const StreamingDataset& source, std::size_t i);

/// Disk-backed source: one shard per manifest entry via ShardReader.
class StoreStreamingDataset final : public StreamingDataset {
 public:
  explicit StoreStreamingDataset(ShardReader reader);

  const std::string& name() const override;
  std::size_t num_shards() const override;
  std::uint64_t rows() const override;
  std::uint64_t cols() const override;
  std::uint64_t nnz() const override;
  std::uint64_t shard_row_begin(std::size_t i) const override;
  std::uint64_t shard_rows(std::size_t i) const override;
  sparse::LabeledMatrix load_shard(std::size_t i) const override;

  const ShardReader& reader() const noexcept { return reader_; }

 private:
  ShardReader reader_;
};

/// In-memory source: row slices of one LabeledMatrix, using the identical
/// ceil split rule as ShardWriter for `requested_shards` (so the shard
/// boundaries of a store written with write_store(..., k) and a
/// MemoryShardedDataset(..., k) always agree).  The caller keeps `data`
/// alive.
class MemoryShardedDataset final : public StreamingDataset {
 public:
  MemoryShardedDataset(std::string name, const sparse::LabeledMatrix& data,
                       std::uint64_t requested_shards);

  const std::string& name() const override { return name_; }
  std::size_t num_shards() const override { return num_shards_; }
  std::uint64_t rows() const override { return data_->matrix.rows(); }
  std::uint64_t cols() const override { return data_->matrix.cols(); }
  std::uint64_t nnz() const override { return data_->matrix.nnz(); }
  std::uint64_t shard_row_begin(std::size_t i) const override;
  std::uint64_t shard_rows(std::size_t i) const override;
  sparse::LabeledMatrix load_shard(std::size_t i) const override;

 private:
  std::string name_;
  const sparse::LabeledMatrix* data_;
  std::uint64_t rows_per_shard_ = 1;
  std::size_t num_shards_ = 0;
};

}  // namespace tpa::store
