#include "store/prefetch.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace tpa::store {

double PrefetchStats::overlap_fraction() const noexcept {
  if (load_seconds <= 0.0) return 1.0;
  return std::clamp(1.0 - wait_seconds / load_seconds, 0.0, 1.0);
}

PrefetchPipeline::PrefetchPipeline(const StreamingDataset& source,
                                   std::size_t resident_shards, bool async)
    : source_(&source),
      resident_(std::max<std::size_t>(1, std::min(resident_shards,
                                                  source.num_shards()))),
      async_(async) {
  if (source.num_shards() == 0) resident_ = 1;
  // One dedicated worker: loads are issued in pass order and execute FIFO,
  // so the window fills front-first — exactly the order acquire() consumes.
  if (async_) pool_ = std::make_unique<util::ThreadPool>(1);
}

PrefetchPipeline::~PrefetchPipeline() {
  if (pool_) pool_->wait_idle();
}

void PrefetchPipeline::schedule(std::size_t pos) {
  auto slot = std::make_unique<Slot>();
  slot->pos = pos;
  Slot* raw = slot.get();
  window_.push_back(std::move(slot));
  if (!async_) return;  // sync mode decodes lazily in acquire()
  const std::size_t shard = order_[pos];
  pool_->submit([this, raw, shard] {
    const util::WallTimer timer;
    std::unique_ptr<ResidentShard> value;
    std::exception_ptr error;
    try {
      value = std::make_unique<ResidentShard>(decode_shard(*source_, shard));
    } catch (...) {
      error = std::current_exception();
    }
    const double seconds = timer.seconds();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      raw->value = std::move(value);
      raw->error = error;
      raw->ready = true;
      ++stats_.loads;
      stats_.load_seconds += seconds;
    }
    ready_cv_.notify_all();
  });
}

void PrefetchPipeline::top_up(std::size_t pos) {
  const std::size_t limit = std::min(pos + resident_, order_.size());
  std::size_t next = window_.empty() ? pos : window_.back()->pos + 1;
  for (; next < limit; ++next) schedule(next);
}

void PrefetchPipeline::begin_pass(std::vector<std::size_t> shard_order,
                                  std::size_t start_pos) {
  end_pass();
  order_ = std::move(shard_order);
  if (start_pos < order_.size()) top_up(start_pos);
}

void PrefetchPipeline::end_pass() {
  if (pool_) pool_->wait_idle();  // no worker may touch a slot we drop
  window_.clear();
  order_.clear();
}

const ResidentShard& PrefetchPipeline::acquire(std::size_t pos) {
  if (pos >= order_.size()) {
    throw std::out_of_range("PrefetchPipeline: position past the pass");
  }
  // Retire every finished slot before `pos`.  Dropped slots are always
  // ready (positions are acquired in order and the worker runs FIFO), so
  // the worker can never still reference one.
  while (!window_.empty() && window_.front()->pos < pos) {
    window_.pop_front();
  }
  top_up(pos);
  if (window_.empty() || window_.front()->pos != pos) {
    throw std::logic_error(
        "PrefetchPipeline: acquire() positions must be visited in order");
  }
  Slot& slot = *window_.front();

  if (!async_) {
    // Control arm: load inline.  The sweep waits for the whole load, so
    // the time counts as both load and wait — overlap fraction 0.
    const util::WallTimer timer;
    obs::TraceSpan wait("store/wait");
    try {
      slot.value =
          std::make_unique<ResidentShard>(decode_shard(*source_, order_[pos]));
    } catch (...) {
      slot.error = std::current_exception();
    }
    slot.ready = true;
    const double seconds = timer.seconds();
    ++stats_.loads;
    ++stats_.stalls;
    stats_.load_seconds += seconds;
    stats_.wait_seconds += seconds;
    obs::metrics().counter("store.prefetch_stalls").add();
  } else {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!slot.ready) {
      ++stats_.stalls;
      obs::metrics().counter("store.prefetch_stalls").add();
      obs::TraceSpan wait("store/wait");
      const util::WallTimer timer;
      ready_cv_.wait(lock, [&slot] { return slot.ready; });
      stats_.wait_seconds += timer.seconds();
    }
  }
  if (slot.error) std::rethrow_exception(slot.error);
  return *slot.value;
}

}  // namespace tpa::store
