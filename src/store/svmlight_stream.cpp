#include "store/svmlight_stream.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tpa::store {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("svmlight parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

// Parses one svmlight line into (label, cols, vals); returns false for
// blank/comment lines.  Grammar identical to sparse::read_svmlight.
bool parse_line(const std::string& line, std::size_t line_no, float& label,
                std::vector<sparse::Index>& cols,
                std::vector<sparse::Value>& vals) {
  cols.clear();
  vals.clear();
  if (line.empty() || line[0] == '#') return false;
  std::istringstream tokens(line);
  if (!(tokens >> label)) fail(line_no, "missing label");
  std::string pair;
  while (tokens >> pair) {
    if (pair[0] == '#') break;  // trailing comment
    const auto colon = pair.find(':');
    if (colon == std::string::npos) fail(line_no, "expected index:value");
    long index = 0;
    float value = 0.0F;
    try {
      index = std::stol(pair.substr(0, colon));
      value = std::stof(pair.substr(colon + 1));
    } catch (const std::exception&) {
      fail(line_no, "bad index:value token '" + pair + "'");
    }
    if (index < 1) fail(line_no, "indices are 1-based and positive");
    const auto col = static_cast<sparse::Index>(index - 1);
    if (!cols.empty() && col <= cols.back()) {
      fail(line_no, "feature indices must strictly increase");
    }
    cols.push_back(col);
    vals.push_back(value);
  }
  return true;
}

}  // namespace

Manifest convert_svmlight_to_store(std::istream& in,
                                   const std::string& directory,
                                   const std::string& name,
                                   std::uint64_t rows_per_shard,
                                   sparse::Index num_features) {
  if (num_features == 0) {
    throw std::invalid_argument(
        "convert_svmlight_to_store: a stream needs an explicit feature "
        "count (use the file variant for inference)");
  }
  ShardWriter writer(directory, name, num_features, rows_per_shard);
  std::string line;
  std::size_t line_no = 0;
  float label = 0.0F;
  std::vector<sparse::Index> cols;
  std::vector<sparse::Value> vals;
  while (std::getline(in, line)) {
    ++line_no;
    if (!parse_line(line, line_no, label, cols, vals)) continue;
    if (!cols.empty() && cols.back() >= num_features) {
      fail(line_no, "feature index exceeds num_features");
    }
    writer.append(cols, vals, label);
  }
  return writer.finish();
}

Manifest convert_svmlight_file_to_store(const std::string& svm_path,
                                        const std::string& directory,
                                        const std::string& name,
                                        std::uint64_t rows_per_shard,
                                        sparse::Index num_features) {
  if (num_features == 0) {
    // Inference pass: stream once for the maximum feature index only.
    std::ifstream scan(svm_path);
    if (!scan) throw std::runtime_error("cannot open " + svm_path);
    std::string line;
    std::size_t line_no = 0;
    float label = 0.0F;
    std::vector<sparse::Index> cols;
    std::vector<sparse::Value> vals;
    sparse::Index max_col = 0;
    bool any = false;
    while (std::getline(scan, line)) {
      ++line_no;
      if (!parse_line(line, line_no, label, cols, vals)) continue;
      any = true;
      if (!cols.empty()) max_col = std::max(max_col, cols.back());
    }
    if (!any) throw std::runtime_error("svmlight file has no examples");
    num_features = max_col + 1;
  }
  std::ifstream in(svm_path);
  if (!in) throw std::runtime_error("cannot open " + svm_path);
  return convert_svmlight_to_store(in, directory, name, rows_per_shard,
                                   num_features);
}

}  // namespace tpa::store
