// Streaming-run checkpoints: magic "TPSC", a fixed header (epoch,
// shards_done, seed, threads, rows, cols, shards, lambda), the α and w̄
// arrays, and a trailing FNV-1a checksum of everything after the magic —
// the same self-validation discipline as the TPA1 shard format.
//
// `shards_done` > 0 marks a mid-epoch checkpoint: the run stopped after
// that many shards of epoch `epoch + 1`.  Restoring hands (epoch,
// shards_done, α, w̄) to StreamingScdSolver::resume, which realigns the
// permutation streams so the continuation is bit-exact with the
// uninterrupted run.  The header identity fields (seed, threads, rows,
// cols, shards) let the restorer reject a checkpoint taken against a
// different store or schedule, where bit-exact resume is impossible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tpa::store {

struct StreamingCheckpoint {
  std::uint64_t epoch = 0;        // full epochs completed
  std::uint64_t shards_done = 0;  // shards swept into the next epoch
  std::uint64_t seed = 0;
  std::uint64_t threads = 1;
  std::uint64_t rows = 0;   // store identity: global shape and shard count
  std::uint64_t cols = 0;
  std::uint64_t shards = 0;
  double lambda = 0.0;
  std::vector<float> alpha;   // size rows
  std::vector<float> shared;  // size cols
};

/// Atomic write (temp file + rename), like the model saver: a crash never
/// leaves a half-written checkpoint under the final name.
void write_checkpoint_file(const std::string& path,
                           const StreamingCheckpoint& checkpoint);

/// Throws std::runtime_error on bad magic, truncation, checksum mismatch
/// or array sizes that contradict the header.
StreamingCheckpoint read_checkpoint_file(const std::string& path);

}  // namespace tpa::store
