// Double-buffered shard prefetch (DESIGN.md §12).
//
// The pipeline keeps a sliding window of up to `resident_shards` decoded
// shards over one pass's shard order.  A dedicated single-worker ThreadPool
// loads and decodes upcoming shards (ShardReader I/O + rows-only Dataset
// build) while the solver sweeps the current one; with resident_shards = 2
// this is classic double buffering — shard k+1 streams in behind the sweep
// of shard k.
//
// Protocol per pass:
//   begin_pass(order)   — order is this epoch's shard visit sequence;
//                         loads for the first `resident_shards` positions
//                         are enqueued immediately.
//   acquire(pos)        — positions must be acquired in order 0, 1, ….
//                         Drops every slot before `pos` (their shards are
//                         done), tops the window up to `resident_shards`
//                         ahead, and blocks until position `pos` is
//                         decoded.  Blocking counts as a prefetch stall:
//                         "store.prefetch_stalls" ticks and the blocked
//                         time runs under a "store/wait" span.  The
//                         returned reference stays valid until the next
//                         acquire/end_pass.
//   end_pass()          — drains the worker and drops the window.
//
// A load that throws (corrupt shard, I/O error) is captured on its slot
// and rethrown from the acquire() that needs it — errors surface on the
// solver thread, never terminate the worker.
//
// Synchronous mode (async = false) loads each shard inline in acquire():
// no overlap, every load a stall.  It is the control arm for measuring
// what prefetch buys, and the fallback when a host cannot spare a thread.
//
// Determinism: the pipeline only changes *when* shards are decoded, never
// their content or the order the solver sees them, so a streamed run is
// bit-identical with prefetch on, off, or any window size.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <vector>

#include "store/streaming_dataset.hpp"
#include "util/thread_pool.hpp"

namespace tpa::store {

struct PrefetchStats {
  std::uint64_t loads = 0;         // shards loaded + decoded
  std::uint64_t stalls = 0;        // acquires that had to wait
  double load_seconds = 0.0;       // total load+decode time
  double wait_seconds = 0.0;       // total time acquire() sat blocked

  /// Fraction of load time hidden behind the sweep: 1 − wait/load,
  /// clamped to [0, 1].  1.0 when nothing was loaded.
  double overlap_fraction() const noexcept;
};

class PrefetchPipeline {
 public:
  /// `source` must outlive the pipeline.  `resident_shards` >= 1 bounds
  /// how many decoded shards exist at once (the memory budget knob);
  /// values above the source's shard count are clamped.
  PrefetchPipeline(const StreamingDataset& source,
                   std::size_t resident_shards, bool async = true);
  ~PrefetchPipeline();
  PrefetchPipeline(const PrefetchPipeline&) = delete;
  PrefetchPipeline& operator=(const PrefetchPipeline&) = delete;

  /// `start_pos` > 0 resumes a pass mid-way (checkpoint restore): loads
  /// are enqueued from that position and the first acquire must be for it.
  void begin_pass(std::vector<std::size_t> shard_order,
                  std::size_t start_pos = 0);
  const ResidentShard& acquire(std::size_t pos);
  void end_pass();

  std::size_t resident_shards() const noexcept { return resident_; }
  bool async() const noexcept { return async_; }
  const PrefetchStats& stats() const noexcept { return stats_; }

 private:
  struct Slot {
    std::size_t pos = 0;
    std::unique_ptr<ResidentShard> value;
    std::exception_ptr error;
    bool ready = false;
  };

  void schedule(std::size_t pos);
  void top_up(std::size_t pos);

  const StreamingDataset* source_;
  std::size_t resident_;
  bool async_;
  std::vector<std::size_t> order_;
  std::deque<std::unique_ptr<Slot>> window_;  // ascending positions
  std::mutex mutex_;
  std::condition_variable ready_cv_;
  PrefetchStats stats_;
  // Declared last: destroyed (joined) before the window it references.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace tpa::store
