#include "store/streaming_dataset.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "store/format.hpp"

namespace tpa::store {

ResidentShard decode_shard(const StreamingDataset& source, std::size_t i) {
  sparse::LabeledMatrix slice = source.load_shard(i);
  obs::TraceSpan decode("store/decode", obs::kCurrentThread,
                        static_cast<std::int64_t>(slice.matrix.nnz()));
  ResidentShard shard;
  shard.shard = i;
  shard.row_begin = source.shard_row_begin(i);
  // Rows-only: dual-formulation sweeps and the streamed gap never touch the
  // column orientation, and skipping it roughly halves the resident bytes.
  shard.dataset = data::Dataset(
      source.name() + "/shard" + std::to_string(i), std::move(slice.matrix),
      std::move(slice.labels), data::DatasetLayout::kRowsOnly);
  return shard;
}

StoreStreamingDataset::StoreStreamingDataset(ShardReader reader)
    : reader_(std::move(reader)) {}

const std::string& StoreStreamingDataset::name() const {
  return reader_.manifest().name;
}
std::size_t StoreStreamingDataset::num_shards() const {
  return reader_.num_shards();
}
std::uint64_t StoreStreamingDataset::rows() const {
  return reader_.manifest().rows;
}
std::uint64_t StoreStreamingDataset::cols() const {
  return reader_.manifest().cols;
}
std::uint64_t StoreStreamingDataset::nnz() const {
  return reader_.manifest().nnz;
}
std::uint64_t StoreStreamingDataset::shard_row_begin(std::size_t i) const {
  return reader_.manifest().shards.at(i).row_begin;
}
std::uint64_t StoreStreamingDataset::shard_rows(std::size_t i) const {
  return reader_.manifest().shards.at(i).rows;
}
sparse::LabeledMatrix StoreStreamingDataset::load_shard(std::size_t i) const {
  return reader_.read_shard(i);
}

MemoryShardedDataset::MemoryShardedDataset(std::string name,
                                           const sparse::LabeledMatrix& data,
                                           std::uint64_t requested_shards)
    : name_(std::move(name)), data_(&data) {
  rows_per_shard_ = rows_per_shard(data.matrix.rows(), requested_shards);
  num_shards_ = static_cast<std::size_t>(
      (data.matrix.rows() + rows_per_shard_ - 1) / rows_per_shard_);
}

std::uint64_t MemoryShardedDataset::shard_row_begin(std::size_t i) const {
  if (i >= num_shards_) throw std::out_of_range("shard index");
  return i * rows_per_shard_;
}

std::uint64_t MemoryShardedDataset::shard_rows(std::size_t i) const {
  const std::uint64_t begin = shard_row_begin(i);
  return std::min<std::uint64_t>(rows_per_shard_, rows() - begin);
}

sparse::LabeledMatrix MemoryShardedDataset::load_shard(std::size_t i) const {
  const auto begin = static_cast<sparse::Index>(shard_row_begin(i));
  const auto count = static_cast<sparse::Index>(shard_rows(i));
  const auto& matrix = data_->matrix;

  const auto all_offsets = matrix.row_offsets();
  const sparse::Offset first = all_offsets[begin];
  const sparse::Offset last = all_offsets[begin + count];

  std::vector<sparse::Offset> offsets(count + 1);
  for (sparse::Index r = 0; r <= count; ++r) {
    offsets[r] = all_offsets[begin + r] - first;
  }
  const auto indices = matrix.col_indices().subspan(first, last - first);
  const auto values = matrix.values().subspan(first, last - first);
  std::vector<float> labels(data_->labels.begin() + begin,
                            data_->labels.begin() + begin + count);
  return sparse::LabeledMatrix{
      sparse::CsrMatrix(count, matrix.cols(), std::move(offsets),
                        std::vector<sparse::Index>(indices.begin(),
                                                   indices.end()),
                        std::vector<sparse::Value>(values.begin(),
                                                   values.end())),
      std::move(labels)};
}

}  // namespace tpa::store
