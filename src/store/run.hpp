// Convergence driver for streamed runs: the out-of-core counterpart of
// core::run_solver, producing the same ConvergenceTrace under the same
// RunOptions semantics (gap_every stride, final epoch always evaluated,
// target-gap early stop) and the same "train/epoch" / "train/gap_eval"
// spans and "train.epochs" / "train.gap_evals" counters — so run reports
// and trace tooling treat streamed and in-memory runs identically.
//
// Checkpointing: with a non-empty CheckpointOptions::path the driver
// writes a TPSC checkpoint every `every_shards` shards — shard, not
// epoch, granularity, because at Criteo scale a single epoch is hours and
// the whole point of the store is surviving that.  `gap_threads` and
// `merge_every` from RunOptions are ignored here (the streamed gap is the
// serial-order evaluation by design; merge_every rides in
// StreamingConfig).
#pragma once

#include <string>

#include "core/convergence.hpp"
#include "store/checkpoint.hpp"
#include "store/streaming_solver.hpp"

namespace tpa::store {

struct CheckpointOptions {
  std::string path;            // empty = no checkpoints
  std::size_t every_shards = 0;  // 0 = only when path set and run ends
};

core::ConvergenceTrace run_streaming(StreamingScdSolver& solver,
                                     const core::RunOptions& options,
                                     const CheckpointOptions& checkpoint = {});

/// Snapshot of `solver`'s current position and state as a checkpoint.
StreamingCheckpoint make_checkpoint(const StreamingScdSolver& solver);

}  // namespace tpa::store
