#include "store/shard_reader.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "sparse/io_binary.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TPA_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define TPA_STORE_HAS_MMAP 0
#endif

namespace tpa::store {
namespace {

[[noreturn]] void fail(std::size_t shard, const std::string& what) {
  throw std::runtime_error("store shard " + std::to_string(shard) + ": " +
                           what);
}

#if TPA_STORE_HAS_MMAP
// RAII fd + mapping so validation throws unwind cleanly.
struct Mapping {
  int fd = -1;
  void* data = MAP_FAILED;
  std::size_t size = 0;

  explicit Mapping(const std::string& path) {
    fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw std::runtime_error("cannot open " + path);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw std::runtime_error("cannot stat " + path);
    }
    size = static_cast<std::size_t>(st.st_size);
    data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      ::close(fd);
      throw std::runtime_error("cannot mmap " + path);
    }
  }
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
    if (data != MAP_FAILED) ::munmap(data, size);
    if (fd >= 0) ::close(fd);
  }
};
#endif

}  // namespace

ReadMode parse_read_mode(const std::string& name) {
  if (name == "buffered") return ReadMode::kBuffered;
  if (name == "mmap") return ReadMode::kMmap;
  throw std::invalid_argument("unknown store read mode '" + name +
                              "' (buffered | mmap)");
}

const char* read_mode_name(ReadMode mode) {
  return mode == ReadMode::kBuffered ? "buffered" : "mmap";
}

ShardReader::ShardReader(Manifest manifest, std::string manifest_dir,
                         ReadMode mode)
    : manifest_(std::move(manifest)), dir_(std::move(manifest_dir)),
      mode_(mode) {
  if (dir_.empty()) dir_ = ".";
}

ShardReader ShardReader::open(const std::string& manifest_path,
                              ReadMode mode) {
  Manifest manifest = read_manifest_file(manifest_path);
  std::string dir =
      std::filesystem::path(manifest_path).parent_path().string();
  return ShardReader(std::move(manifest), std::move(dir), mode);
}

std::string ShardReader::shard_path(std::size_t i) const {
  return dir_ + "/" + manifest_.shards.at(i).file;
}

sparse::LabeledMatrix ShardReader::read_shard(std::size_t i) const {
  const ShardInfo& info = manifest_.shards.at(i);
  const std::string path = shard_path(i);
  obs::TraceSpan load("store/load", obs::kCurrentThread,
                      static_cast<std::int64_t>(info.bytes));

  std::error_code ec;
  const auto actual = std::filesystem::file_size(path, ec);
  if (ec) fail(i, "cannot stat " + path);
  if (actual != info.bytes) {
    fail(i, "file size " + std::to_string(actual) +
                " does not match manifest (" + std::to_string(info.bytes) +
                " bytes) — truncated or stale shard");
  }

  // The sparse decoder knows nothing about which file it is decoding;
  // re-throw its checksum/truncation errors with enough context to find
  // the damage on disk.  The FNV digest covers bytes [4, size-8) —
  // everything between the magic and the stored digest.
  const auto decode = [&](auto&& read) -> sparse::LabeledMatrix {
    try {
      return read();
    } catch (const std::runtime_error& error) {
      fail(i, std::string(error.what()) + " in " + path +
                  " (payload bytes [4, " + std::to_string(info.bytes - 8) +
                  "), stored digest at byte " +
                  std::to_string(info.bytes - 8) + ")");
    }
  };
  sparse::LabeledMatrix data = [&]() -> sparse::LabeledMatrix {
#if TPA_STORE_HAS_MMAP
    if (mode_ == ReadMode::kMmap) {
      const Mapping map(path);  // open/stat/mmap errors already name the path
      return decode([&] { return sparse::read_binary(map.data, map.size); });
    }
#endif
    std::ifstream in(path, std::ios::binary);
    if (!in) fail(i, "cannot open " + path);
    return decode([&] { return sparse::read_binary(in); });
  }();

  if (data.matrix.rows() != info.rows || data.matrix.nnz() != info.nnz ||
      data.matrix.cols() != manifest_.cols) {
    fail(i, "shard shape does not match the manifest entry");
  }
  obs::metrics().counter("store.bytes_read").add(info.bytes);
  return data;
}

}  // namespace tpa::store
