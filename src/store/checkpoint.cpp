#include "store/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "sparse/io_binary.hpp"

namespace tpa::store {
namespace {

constexpr char kMagic[4] = {'T', 'P', 'S', 'C'};

struct Header {
  std::uint64_t epoch = 0;
  std::uint64_t shards_done = 0;
  std::uint64_t seed = 0;
  std::uint64_t threads = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t shards = 0;
  double lambda = 0.0;
};

void write_raw(std::ostream& out, const void* data, std::size_t bytes,
               sparse::Fnv1a& checksum) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("checkpoint write failed");
  checksum.update(data, bytes);
}

void read_raw(std::istream& in, void* data, std::size_t bytes,
              sparse::Fnv1a& checksum) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    throw std::runtime_error("checkpoint truncated");
  }
  checksum.update(data, bytes);
}

}  // namespace

void write_checkpoint_file(const std::string& path,
                           const StreamingCheckpoint& checkpoint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) {
      throw std::runtime_error("cannot open " + tmp + " for writing");
    }
    out.write(kMagic, sizeof(kMagic));
    sparse::Fnv1a checksum;
    const Header header{checkpoint.epoch, checkpoint.shards_done,
                        checkpoint.seed,  checkpoint.threads,
                        checkpoint.rows,  checkpoint.cols,
                        checkpoint.shards, checkpoint.lambda};
    write_raw(out, &header, sizeof(header), checksum);
    write_raw(out, checkpoint.alpha.data(),
              checkpoint.alpha.size() * sizeof(float), checksum);
    write_raw(out, checkpoint.shared.data(),
              checkpoint.shared.size() * sizeof(float), checksum);
    const std::uint64_t digest = checksum.digest();
    out.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
    if (!out) throw std::runtime_error("checkpoint write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
}

StreamingCheckpoint read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  sparse::Fnv1a checksum;
  Header header;
  read_raw(in, &header, sizeof(header), checksum);
  // Validate the header against the file size before trusting its array
  // lengths: a corrupted rows/cols field must fail cleanly here, not as a
  // giant allocation.
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  if (header.rows > file_size || header.cols > file_size) {
    throw std::runtime_error("checkpoint: header contradicts file size");
  }
  const std::uint64_t expected = sizeof(kMagic) + sizeof(Header) +
                                 (header.rows + header.cols) * sizeof(float) +
                                 sizeof(std::uint64_t);
  if (file_size != expected) {
    throw std::runtime_error("checkpoint: header contradicts file size");
  }
  in.seekg(sizeof(kMagic) + sizeof(Header), std::ios::beg);
  StreamingCheckpoint checkpoint;
  checkpoint.epoch = header.epoch;
  checkpoint.shards_done = header.shards_done;
  checkpoint.seed = header.seed;
  checkpoint.threads = header.threads;
  checkpoint.rows = header.rows;
  checkpoint.cols = header.cols;
  checkpoint.shards = header.shards;
  checkpoint.lambda = header.lambda;
  checkpoint.alpha.resize(header.rows);
  checkpoint.shared.resize(header.cols);
  read_raw(in, checkpoint.alpha.data(),
           checkpoint.alpha.size() * sizeof(float), checksum);
  read_raw(in, checkpoint.shared.data(),
           checkpoint.shared.size() * sizeof(float), checksum);
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(stored)) {
    throw std::runtime_error("checkpoint truncated (checksum)");
  }
  if (stored != checksum.digest()) {
    throw std::runtime_error("checkpoint: checksum mismatch");
  }
  return checkpoint;
}

}  // namespace tpa::store
